/**
 * @file
 * PMU implementation.
 */

#include "pmu.hh"

#include <cmath>

#include "common/logging.hh"

namespace nb::sim
{

Pmu::Pmu(unsigned num_prog, bool has_fixed, double ref_ratio)
    : numProg_(num_prog), hasFixed_(has_fixed), refRatio_(ref_ratio),
      progSel_(num_prog, EventId::NumEvents)
{
    NB_ASSERT(num_prog >= 1 && num_prog <= 8,
              "unsupported programmable counter count ", num_prog);
    static_assert(kNumEvents <= 64, "loggedMask_ is a 64-bit bitmask");
    rebuildLoggedMask();
}

void
Pmu::rebuildLoggedMask()
{
    std::uint64_t mask =
        std::uint64_t{1} << static_cast<unsigned>(EventId::InstrRetired);
    for (EventId sel : progSel_) {
        if (sel != EventId::NumEvents)
            mask |= std::uint64_t{1} << static_cast<unsigned>(sel);
    }
    loggedMask_ = mask;
}

bool
Pmu::configureProg(unsigned idx, EventCode code)
{
    NB_ASSERT(idx < numProg_, "counter index out of range: ", idx);
    auto info = findEvent(code);
    if (!info)
        return false;
    progSel_[idx] = info->id;
    rebuildLoggedMask();
    return true;
}

void
Pmu::disableProg(unsigned idx)
{
    NB_ASSERT(idx < numProg_, "counter index out of range: ", idx);
    progSel_[idx] = EventId::NumEvents;
    rebuildLoggedMask();
}

EventId
Pmu::progEvent(unsigned idx) const
{
    NB_ASSERT(idx < numProg_, "counter index out of range: ", idx);
    return progSel_[idx];
}

bool
Pmu::eventLogged(EventId event) const
{
    if (event == EventId::InstrRetired)
        return true;
    for (EventId sel : progSel_) {
        if (sel == event)
            return true;
    }
    return false;
}

void
Pmu::count(EventId event, std::uint64_t n, Cycles cycle)
{
    if (paused_ || n == 0)
        return;
    auto idx = static_cast<unsigned>(event);
    NB_ASSERT(idx < kNumEvents, "bad event id");
    totals_[idx] += n;
    if (eventLogged(event)) {
        logs_[idx].push_back(
            Increment{cycle, static_cast<std::uint32_t>(n)});
    }
}

void
Pmu::beginEpoch()
{
    for (unsigned i = 0; i < kNumEvents; ++i) {
        epochBase_[i] = totals_[i];
        logs_[i].clear();
    }
}

std::uint64_t
Pmu::sample(EventId event, Cycles cycle) const
{
    auto idx = static_cast<unsigned>(event);
    std::uint64_t value = epochBase_[idx];
    // Increments arrive in program order but are tagged with the cycle
    // they occur at, which is not monotone under out-of-order timing;
    // scan linearly (reads are rare -- a handful per run).
    for (const auto &inc : logs_[idx]) {
        if (inc.cycle <= cycle)
            value += inc.n;
    }
    return value;
}

std::uint64_t
Pmu::readProg(unsigned idx, Cycles cycle) const
{
    NB_ASSERT(idx < numProg_, "counter index out of range: ", idx);
    EventId sel = progSel_[idx];
    if (sel == EventId::NumEvents)
        return 0;
    return sample(sel, cycle);
}

std::uint64_t
Pmu::readFixed(unsigned idx, Cycles cycle) const
{
    NB_ASSERT(hasFixed_, "no fixed counters on this CPU");
    switch (idx) {
      case 0:
        return sample(EventId::InstrRetired, cycle);
      case 1:
        return cycle;
      case 2:
        return static_cast<std::uint64_t>(
            std::llround(static_cast<double>(cycle) * refRatio_));
      default:
        fatal("bad fixed counter index ", idx);
    }
}

std::uint64_t
Pmu::aperf(Cycles cycle) const
{
    return cycle;
}

std::uint64_t
Pmu::mperf(Cycles cycle) const
{
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(cycle) * refRatio_));
}

std::uint64_t
Pmu::total(EventId event) const
{
    return totals_[static_cast<unsigned>(event)];
}

} // namespace nb::sim
