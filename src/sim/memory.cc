/**
 * @file
 * Simulated-memory implementation.
 */

#include "memory.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::sim
{

PhysMemory::Page &
PhysMemory::pageFor(Addr paddr)
{
    Addr page = paddr / kPageSize;
    auto &slot = pages_[page];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

const PhysMemory::Page *
PhysMemory::pageForRead(Addr paddr) const
{
    auto it = pages_.find(paddr / kPageSize);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
PhysMemory::read(Addr paddr, unsigned bytes) const
{
    NB_ASSERT(bytes >= 1 && bytes <= 8, "bad read size ", bytes);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
        Addr a = paddr + i;
        const Page *page = pageForRead(a);
        std::uint8_t b = page ? (*page)[a % kPageSize] : 0;
        value |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    return value;
}

void
PhysMemory::write(Addr paddr, std::uint64_t value, unsigned bytes)
{
    NB_ASSERT(bytes >= 1 && bytes <= 8, "bad write size ", bytes);
    for (unsigned i = 0; i < bytes; ++i) {
        Addr a = paddr + i;
        pageFor(a)[a % kPageSize] =
            static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF);
    }
}

void
PageTable::mapPage(Addr vaddr, Addr paddr)
{
    map_[vaddr / kPageSize] = paddr / kPageSize;
}

void
PageTable::unmapPage(Addr vaddr)
{
    map_.erase(vaddr / kPageSize);
}

bool
PageTable::isMapped(Addr vaddr) const
{
    return map_.count(vaddr / kPageSize) != 0;
}

Addr
PageTable::translate(Addr vaddr) const
{
    auto it = map_.find(vaddr / kPageSize);
    if (it == map_.end())
        fatal("page fault: virtual address 0x", std::hex, vaddr,
              " is not mapped");
    return it->second * kPageSize + vaddr % kPageSize;
}

} // namespace nb::sim
