/**
 * @file
 * Reference instruction execution: semantics plus per-instruction
 * timing orchestration (µop decomposition, dependence tracking,
 * fences, branches, counter-read sampling).
 *
 * This is the frozen pre-threaded-dispatch path behind
 * Machine::executeReference(). The primary executor (dispatch.cc)
 * must stay bit-identical to it in every observable; the parity suite
 * compares the two instruction class by instruction class. Do not
 * optimize this file -- it is the baseline the dispatch_vs_predecode
 * bench gate measures against.
 */

#include <bit>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/machine.hh"
#include "sim/semantics.hh"
#include "uarch/timing.hh"

namespace nb::sim
{

using x86::Instruction;
using x86::MemRef;
using x86::Opcode;
using x86::Operand;
using x86::OperandKind;
using x86::Reg;

void
Machine::executeInstr(const DecodedInsn &d, ExecContext &ctx)
{
    const Program &prog = *ctx.program;
    const Instruction &insn = prog.insn(d);

    if (d.privileged)
        requirePrivilege(insn);

    // ---------------------------------------------------------------
    // Magic markers: pause/resume counting (§III-I). Acts like a light
    // dispatch fence with a small fixed overhead.
    // ---------------------------------------------------------------
    if (insn.opcode == Opcode::PFC_PAUSE ||
        insn.opcode == Opcode::PFC_RESUME) {
        Cycles fence_point = sched_.maxCompletion + 5;
        sched_.minDispatch = std::max(sched_.minDispatch, fence_point);
        pmu_.setPaused(insn.opcode == Opcode::PFC_PAUSE);
        retireInstr(fence_point, false, false);
        return;
    }

    const Operand *mem_op =
        d.memOpIdx >= 0 ? &insn.operands[d.memOpIdx] : nullptr;
    bool has_load = d.hasLoad;
    bool has_store = d.hasStore;

    // Pattern-relative branch targets resolve against the current
    // copy's virtual base (see program.hh).
    auto resolve_target = [&]() -> std::uint64_t {
        std::uint64_t t = static_cast<std::uint64_t>(d.target);
        return d.targetAbsolute ? t : ctx.copyBase + t;
    };

    // ---------------------------------------------------------------
    // Source readiness (timing): the registers to wait on were
    // classified at decode time.
    // ---------------------------------------------------------------
    Cycles src_ready = 0;
    if (!d.zeroIdiom) {
        const Reg *src = prog.srcRegs(d);
        for (unsigned i = 0; i < d.srcCount; ++i) {
            src_ready = std::max(
                src_ready,
                sched_.regReady[static_cast<unsigned>(src[i])]);
        }
        if (d.readsFlags)
            src_ready = std::max(src_ready, sched_.flagsReady);
    }

    Cycles addr_ready = 0;
    const Reg *addr = prog.addrRegs(d);
    for (unsigned i = 0; i < d.addrCount; ++i) {
        addr_ready = std::max(
            addr_ready,
            sched_.regReady[static_cast<unsigned>(addr[i])]);
    }

    // ---------------------------------------------------------------
    // Fences and serialization (§IV-A1).
    // ---------------------------------------------------------------
    if (insn.opcode == Opcode::LFENCE || insn.opcode == Opcode::MFENCE) {
        // Dispatches only after all prior instructions completed
        // locally; no later instruction begins execution until it
        // completes.
        Cycles fence_point = sched_.maxCompletion;
        Cycles done = fence_point + 2;
        sched_.minDispatch = std::max(sched_.minDispatch, done);
        count(EventId::UopsIssued, 1, issueSlot(ctx.effectiveIssueWidth));
        retireInstr(done, false, false);
        return;
    }
    if (insn.opcode == Opcode::SFENCE) {
        count(EventId::UopsIssued, 1, issueSlot(ctx.effectiveIssueWidth));
        retireInstr(sched_.maxCompletion + 1, false, false);
        return;
    }
    if (insn.opcode == Opcode::CPUID) {
        // Serializing, but with a variable latency and µop count
        // (Paoloni's observation): unsuitable for short benchmarks.
        Cycles fence_point = sched_.maxCompletion;
        unsigned extra_uops =
            static_cast<unsigned>(rng_.nextRange(16, 48));
        Cycles extra_lat = rng_.nextRange(0, 200);
        Cycles done = fence_point + 100 + extra_lat;
        // The port rotation for the synthetic µops, resolved once
        // (this used to call uarch::coreTiming three times per µop).
        const uarch::PortMask *cpuid_ports = prog.uopPorts(d);
        for (unsigned i = 0; i < extra_uops; ++i) {
            count(EventId::UopsIssued, 1,
                  issueSlot(ctx.effectiveIssueWidth));
            dispatchUop(cpuid_ports[i % d.uopCount], fence_point, 1, 0);
        }
        sched_.minDispatch = std::max(sched_.minDispatch, done);
        sched_.maxCompletion = std::max(sched_.maxCompletion, done);
        // Leaf-dependent model values.
        arch_.writeGpr(Reg::RAX, 64, 0x000506E3); // family/model-ish id
        arch_.writeGpr(Reg::RBX, 64, 0x756E6547);
        arch_.writeGpr(Reg::RCX, 64, 0x6C65746E);
        arch_.writeGpr(Reg::RDX, 64, 0x49656E69);
        for (Reg r : {Reg::RAX, Reg::RBX, Reg::RCX, Reg::RDX})
            sched_.regReady[static_cast<unsigned>(r)] = done;
        retireInstr(done, false, false);
        return;
    }

    // ---------------------------------------------------------------
    // Issue accounting (µop count resolved at decode time).
    // ---------------------------------------------------------------
    unsigned issue_uops = d.nIssueUops;
    Cycles issue_ready = 0;
    for (unsigned i = 0; i < issue_uops; ++i) {
        Cycles ic = issueSlot(ctx.effectiveIssueWidth);
        count(EventId::UopsIssued, 1, ic);
        issue_ready = std::max(issue_ready, ic);
        ++ctx.stats.uops;
    }

    // ---------------------------------------------------------------
    // Load µop (semantics + timing together).
    // ---------------------------------------------------------------
    Cycles load_done = 0;
    std::uint64_t loaded = 0;
    VecReg loaded_vec{};
    Addr mem_vaddr = 0;
    if (mem_op)
        mem_vaddr = effectiveAddress(mem_op->mem);

    if (d.doLoadUop) {
        NB_ASSERT(mem_op != nullptr, "load without memory operand");
        Cycles ready = std::max(addr_ready, issue_ready);
        auto lt = dispatchUop(ports_.loadPorts, ready, 1, 0);
        Cycles lat;
        if (mem_op->widthBits > 64) {
            loaded_vec = loadVec(mem_vaddr, mem_op->widthBits / 8, &lat);
        } else {
            auto [value, l] = loadValue(mem_vaddr, mem_op->widthBits / 8);
            loaded = value;
            lat = l;
        }
        load_done = lt.dispatch + lat;
        sched_.maxCompletion = std::max(sched_.maxCompletion, load_done);
    }

    // ---------------------------------------------------------------
    // Core µops (timing resolved at decode time).
    // ---------------------------------------------------------------
    Cycles core_ready = std::max({src_ready, issue_ready, load_done});
    Cycles core_done = core_ready;
    Cycles first_dispatch = core_ready;
    if (d.uopCount != 0) {
        const uarch::PortMask *uop_ports = prog.uopPorts(d);
        auto t0 = dispatchUop(uop_ports[0], core_ready, d.latency,
                              d.blockCycles);
        core_done = t0.done;
        first_dispatch = t0.dispatch;
        for (unsigned i = 1; i < d.uopCount; ++i) {
            auto ti = dispatchUop(uop_ports[i], core_ready, 1, 0);
            core_done = std::max(core_done, ti.done);
        }
    } else if (has_load) {
        core_done = load_done;
    } else {
        // NOP-like: completes at issue.
        core_done = issue_ready;
        sched_.maxCompletion = std::max(sched_.maxCompletion, core_done);
        sched_.window.push_back(core_done);
    }

    // ---------------------------------------------------------------
    // Semantics.
    // ---------------------------------------------------------------
    Cycles result_ready = core_done;
    bool is_branch = d.isBranch;
    bool taken = false;
    bool mispredicted = false;
    std::uint64_t branch_target = ctx.nextIdx;

    auto read_src = [&](const Operand &op) -> std::uint64_t {
        switch (op.kind) {
          case OperandKind::Register:
            return arch_.readGpr(op.reg, op.widthBits);
          case OperandKind::Immediate:
            return static_cast<std::uint64_t>(op.imm) &
                   widthMask(op.widthBits);
          case OperandKind::Memory:
            return loaded & widthMask(op.widthBits);
          case OperandKind::None:
            break;
        }
        panic("unreadable operand");
    };
    auto read_vec_src = [&](const Operand &op) -> VecReg {
        if (op.kind == OperandKind::Register)
            return arch_.readVec(op.reg);
        if (op.kind == OperandKind::Memory)
            return loaded_vec;
        panic("unreadable vector operand");
    };

    std::optional<std::uint64_t> store_value;
    std::optional<VecReg> store_vec;
    unsigned store_bytes = mem_op ? mem_op->widthBits / 8 : 8;

    auto write_dst = [&](std::uint64_t value) {
        const Operand &dst = insn.operands[0];
        if (dst.kind == OperandKind::Register) {
            arch_.writeGpr(dst.reg, dst.widthBits, value);
            sched_.regReady[static_cast<unsigned>(dst.reg)] = result_ready;
        } else if (dst.kind == OperandKind::Memory) {
            store_value = value;
        } else {
            panic("bad destination operand");
        }
    };
    auto write_vec_dst = [&](const VecReg &value) {
        const Operand &dst = insn.operands[0];
        if (dst.kind == OperandKind::Register) {
            arch_.writeVec(dst.reg, value);
            sched_.regReady[static_cast<unsigned>(dst.reg)] = result_ready;
        } else if (dst.kind == OperandKind::Memory) {
            store_vec = value;
        } else {
            panic("bad vector destination");
        }
    };
    auto set_zf_sf = [&](std::uint64_t result, unsigned width) {
        arch_.zf = (result & widthMask(width)) == 0;
        arch_.sf = (result & signBit(width)) != 0;
    };
    auto flags_written = [&]() { sched_.flagsReady = result_ready; };

    unsigned op_width = d.opWidth;

    switch (insn.opcode) {
      case Opcode::NOP:
      case Opcode::PAUSE:
        break;

      case Opcode::MOV:
        write_dst(read_src(insn.operands[1]));
        break;
      case Opcode::MOVNTI:
        write_dst(read_src(insn.operands[1]));
        break;
      case Opcode::MOVZX:
        write_dst(read_src(insn.operands[1]));
        break;
      case Opcode::MOVSX: {
        std::uint64_t v = read_src(insn.operands[1]);
        unsigned sw = insn.operands[1].widthBits;
        if (v & signBit(sw))
            v |= ~widthMask(sw);
        write_dst(v);
        break;
      }
      case Opcode::LEA:
        write_dst(mem_vaddr & widthMask(op_width));
        break;
      case Opcode::XCHG: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t b = read_src(insn.operands[1]);
        write_dst(b);
        const Operand &src = insn.operands[1];
        if (src.kind == OperandKind::Register) {
            arch_.writeGpr(src.reg, src.widthBits, a);
            sched_.regReady[static_cast<unsigned>(src.reg)] = result_ready;
        } else {
            store_value = a;
        }
        break;
      }
      case Opcode::BSWAP: {
        std::uint64_t v = read_src(insn.operands[0]);
        if (op_width == 64)
            v = __builtin_bswap64(v);
        else
            v = __builtin_bswap32(static_cast<std::uint32_t>(v));
        write_dst(v);
        break;
      }
      case Opcode::CMOVZ:
      case Opcode::CMOVNZ:
      case Opcode::CMOVC:
      case Opcode::CMOVNC: {
        bool cond = insn.opcode == Opcode::CMOVZ    ? arch_.zf
                    : insn.opcode == Opcode::CMOVNZ ? !arch_.zf
                    : insn.opcode == Opcode::CMOVC  ? arch_.cf
                                                    : !arch_.cf;
        std::uint64_t v = cond ? read_src(insn.operands[1])
                               : read_src(insn.operands[0]);
        write_dst(v);
        break;
      }

      case Opcode::ADD:
      case Opcode::ADC: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t b = read_src(insn.operands[1]);
        std::uint64_t carry =
            insn.opcode == Opcode::ADC && arch_.cf ? 1 : 0;
        std::uint64_t r = (a + b + carry) & widthMask(op_width);
        arch_.cf = r < a || (carry && r == a);
        arch_.of = ((a ^ r) & (b ^ r) & signBit(op_width)) != 0;
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
        break;
      }
      case Opcode::SUB:
      case Opcode::SBB:
      case Opcode::CMP: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t b = read_src(insn.operands[1]);
        std::uint64_t borrow =
            insn.opcode == Opcode::SBB && arch_.cf ? 1 : 0;
        std::uint64_t r = (a - b - borrow) & widthMask(op_width);
        arch_.cf = a < b + borrow;
        arch_.of = ((a ^ b) & (a ^ r) & signBit(op_width)) != 0;
        set_zf_sf(r, op_width);
        flags_written();
        if (insn.opcode != Opcode::CMP)
            write_dst(r);
        break;
      }
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
      case Opcode::TEST: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t b = read_src(insn.operands[1]);
        std::uint64_t r;
        if (insn.opcode == Opcode::OR)
            r = a | b;
        else if (insn.opcode == Opcode::XOR)
            r = a ^ b;
        else
            r = a & b;
        r &= widthMask(op_width);
        arch_.cf = false;
        arch_.of = false;
        set_zf_sf(r, op_width);
        flags_written();
        if (insn.opcode != Opcode::TEST)
            write_dst(r);
        break;
      }
      case Opcode::INC:
      case Opcode::DEC: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t r = (insn.opcode == Opcode::INC ? a + 1 : a - 1) &
                          widthMask(op_width);
        // INC/DEC preserve CF.
        arch_.of = insn.opcode == Opcode::INC
                       ? r == signBit(op_width)
                       : a == signBit(op_width);
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
        break;
      }
      case Opcode::NEG: {
        std::uint64_t a = read_src(insn.operands[0]);
        std::uint64_t r = (0 - a) & widthMask(op_width);
        arch_.cf = a != 0;
        set_zf_sf(r, op_width);
        flags_written();
        write_dst(r);
        break;
      }
      case Opcode::NOT:
        write_dst(~read_src(insn.operands[0]) & widthMask(op_width));
        break;

      case Opcode::IMUL: {
        if (insn.operands.size() == 1) {
            // RDX:RAX = RAX * src (signed widening).
            auto a = static_cast<__int128>(
                static_cast<std::int64_t>(arch_.readGpr(Reg::RAX, 64)));
            auto b = static_cast<__int128>(static_cast<std::int64_t>(
                read_src(insn.operands[0])));
            __int128 p = a * b;
            arch_.writeGpr(Reg::RAX, 64, static_cast<std::uint64_t>(p));
            arch_.writeGpr(Reg::RDX, 64,
                           static_cast<std::uint64_t>(p >> 64));
            sched_.regReady[static_cast<unsigned>(Reg::RAX)] =
                result_ready;
            sched_.regReady[static_cast<unsigned>(Reg::RDX)] =
                result_ready;
        } else if (insn.operands.size() == 2) {
            std::uint64_t r = read_src(insn.operands[0]) *
                              read_src(insn.operands[1]);
            write_dst(r & widthMask(op_width));
        } else {
            std::uint64_t r = read_src(insn.operands[1]) *
                              read_src(insn.operands[2]);
            write_dst(r & widthMask(op_width));
        }
        flags_written();
        break;
      }
      case Opcode::MUL: {
        auto a = static_cast<unsigned __int128>(arch_.readGpr(Reg::RAX,
                                                              64));
        auto b = static_cast<unsigned __int128>(
            read_src(insn.operands[0]));
        unsigned __int128 p = a * b;
        arch_.writeGpr(Reg::RAX, 64, static_cast<std::uint64_t>(p));
        arch_.writeGpr(Reg::RDX, 64, static_cast<std::uint64_t>(p >> 64));
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        flags_written();
        break;
      }
      case Opcode::DIV:
      case Opcode::IDIV: {
        std::uint64_t divisor = read_src(insn.operands[0]);
        if (divisor == 0)
            fatal("divide error (#DE): division by zero");
        unsigned __int128 dividend =
            (static_cast<unsigned __int128>(arch_.readGpr(Reg::RDX, 64))
             << 64) |
            arch_.readGpr(Reg::RAX, 64);
        std::uint64_t q, rem;
        if (insn.opcode == Opcode::DIV) {
            q = static_cast<std::uint64_t>(dividend / divisor);
            rem = static_cast<std::uint64_t>(dividend % divisor);
        } else {
            auto sd = static_cast<__int128>(dividend);
            auto sv = static_cast<std::int64_t>(divisor);
            q = static_cast<std::uint64_t>(sd / sv);
            rem = static_cast<std::uint64_t>(sd % sv);
        }
        arch_.writeGpr(Reg::RAX, 64, q);
        arch_.writeGpr(Reg::RDX, 64, rem);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        flags_written();
        break;
      }

      case Opcode::SHL:
      case Opcode::SHR:
      case Opcode::SAR:
      case Opcode::ROL:
      case Opcode::ROR: {
        std::uint64_t a = read_src(insn.operands[0]);
        unsigned max_shift = op_width == 64 ? 63 : 31;
        unsigned n = static_cast<unsigned>(read_src(insn.operands[1])) &
                     max_shift;
        std::uint64_t r = a;
        if (n != 0) {
            switch (insn.opcode) {
              case Opcode::SHL:
                arch_.cf = (a >> (op_width - n)) & 1;
                r = a << n;
                break;
              case Opcode::SHR:
                arch_.cf = (a >> (n - 1)) & 1;
                r = a >> n;
                break;
              case Opcode::SAR: {
                std::uint64_t s = a;
                if (a & signBit(op_width))
                    s |= ~widthMask(op_width);
                arch_.cf = (s >> (n - 1)) & 1;
                r = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(s) >> n);
                break;
              }
              case Opcode::ROL:
                r = (a << n) | (a >> (op_width - n));
                break;
              case Opcode::ROR:
                r = (a >> n) | (a << (op_width - n));
                break;
              default:
                break;
            }
            r &= widthMask(op_width);
            set_zf_sf(r, op_width);
            flags_written();
        }
        write_dst(r);
        break;
      }

      case Opcode::POPCNT: {
        std::uint64_t v = read_src(insn.operands[1]);
        write_dst(static_cast<std::uint64_t>(std::popcount(v)));
        arch_.zf = v == 0;
        flags_written();
        break;
      }
      case Opcode::LZCNT: {
        std::uint64_t v = read_src(insn.operands[1]);
        unsigned lz = v == 0 ? op_width
                             : static_cast<unsigned>(std::countl_zero(v)) -
                                   (64 - op_width);
        write_dst(lz);
        arch_.cf = v == 0;
        flags_written();
        break;
      }
      case Opcode::TZCNT: {
        std::uint64_t v = read_src(insn.operands[1]);
        unsigned tz = v == 0
                          ? op_width
                          : static_cast<unsigned>(std::countr_zero(v));
        write_dst(tz);
        arch_.cf = v == 0;
        flags_written();
        break;
      }
      case Opcode::BSF:
      case Opcode::BSR: {
        std::uint64_t v = read_src(insn.operands[1]);
        arch_.zf = v == 0;
        flags_written();
        if (v != 0) {
            unsigned pos = insn.opcode == Opcode::BSF
                               ? static_cast<unsigned>(
                                     std::countr_zero(v))
                               : 63 - static_cast<unsigned>(
                                          std::countl_zero(v));
            write_dst(pos);
        }
        break;
      }
      case Opcode::BT:
      case Opcode::BTS:
      case Opcode::BTR: {
        std::uint64_t a = read_src(insn.operands[0]);
        unsigned pos = static_cast<unsigned>(
                           read_src(insn.operands[1])) %
                       op_width;
        arch_.cf = (a >> pos) & 1;
        flags_written();
        if (insn.opcode == Opcode::BTS)
            write_dst(a | (1ULL << pos));
        else if (insn.opcode == Opcode::BTR)
            write_dst(a & ~(1ULL << pos));
        break;
      }
      case Opcode::SETZ:
        write_dst(arch_.zf ? 1 : 0);
        break;
      case Opcode::SETNZ:
        write_dst(arch_.zf ? 0 : 1);
        break;

      // ------------------------------------------------- control flow
      case Opcode::JMP:
        taken = true;
        branch_target = resolve_target();
        break;
      case Opcode::JZ:
      case Opcode::JNZ:
      case Opcode::JC:
      case Opcode::JNC:
      case Opcode::JL:
      case Opcode::JGE:
      case Opcode::JLE:
      case Opcode::JG: {
        switch (insn.opcode) {
          case Opcode::JZ:
            taken = arch_.zf;
            break;
          case Opcode::JNZ:
            taken = !arch_.zf;
            break;
          case Opcode::JC:
            taken = arch_.cf;
            break;
          case Opcode::JNC:
            taken = !arch_.cf;
            break;
          case Opcode::JL:
            taken = arch_.sf != arch_.of;
            break;
          case Opcode::JGE:
            taken = arch_.sf == arch_.of;
            break;
          case Opcode::JLE:
            taken = arch_.zf || arch_.sf != arch_.of;
            break;
          case Opcode::JG:
            taken = !arch_.zf && arch_.sf == arch_.of;
            break;
          default:
            break;
        }
        if (taken)
            branch_target = resolve_target();
        break;
      }
      case Opcode::CALL: {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64) - 8;
        arch_.writeGpr(Reg::RSP, 64, rsp);
        storeValue(rsp, ctx.nextIdx, 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        taken = true;
        branch_target = resolve_target();
        break;
      }
      case Opcode::RET: {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64);
        dispatchUop(ports_.loadPorts, std::max(addr_ready, issue_ready),
                    1, 0);
        auto [value, lat] = loadValue(rsp, 8);
        (void)lat;
        arch_.writeGpr(Reg::RSP, 64, rsp + 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        taken = true;
        if (value > prog.virtualSize())
            fatal("RET to invalid target ", value);
        branch_target = value;
        break;
      }

      case Opcode::PUSH: {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64) - 8;
        arch_.writeGpr(Reg::RSP, 64, rsp);
        storeValue(rsp, read_src(insn.operands[0]), 8);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        break;
      }
      case Opcode::POP: {
        std::uint64_t rsp = arch_.readGpr(Reg::RSP, 64);
        auto pt = dispatchUop(ports_.loadPorts,
                              std::max(addr_ready, issue_ready), 1, 0);
        auto [value, lat] = loadValue(rsp, 8);
        arch_.writeGpr(Reg::RSP, 64, rsp + 8);
        result_ready = std::max(result_ready, pt.dispatch + lat);
        write_dst(value);
        sched_.regReady[static_cast<unsigned>(Reg::RSP)] = result_ready;
        break;
      }

      // ------------------------------------------------------- vector
      case Opcode::MOVAPS:
      case Opcode::MOVUPS:
        write_vec_dst(read_vec_src(insn.operands[1]));
        break;
      case Opcode::PXOR: {
        VecReg a = read_vec_src(insn.operands[0]);
        VecReg b = read_vec_src(insn.operands[1]);
        VecReg r{};
        for (unsigned i = 0; i < 4; ++i)
            r[i] = a[i] ^ b[i];
        write_vec_dst(r);
        break;
      }
      case Opcode::PADDD: {
        VecReg a = read_vec_src(insn.operands[0]);
        VecReg b = read_vec_src(insn.operands[1]);
        VecReg r{};
        for (unsigned i = 0; i < 4; ++i) {
            std::uint32_t lo = static_cast<std::uint32_t>(a[i]) +
                               static_cast<std::uint32_t>(b[i]);
            std::uint32_t hi = static_cast<std::uint32_t>(a[i] >> 32) +
                               static_cast<std::uint32_t>(b[i] >> 32);
            r[i] = static_cast<std::uint64_t>(hi) << 32 | lo;
        }
        write_vec_dst(r);
        break;
      }
      case Opcode::ADDPS:
        write_vec_dst(mapPs(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](float x, float y) {
                                return asBits(x + y);
                            }));
        break;
      case Opcode::MULPS:
        write_vec_dst(mapPs(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](float x, float y) {
                                return asBits(x * y);
                            }));
        break;
      case Opcode::DIVPS:
        write_vec_dst(mapPs(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](float x, float y) {
                                return asBits(y == 0.0f ? 0.0f : x / y);
                            }));
        break;
      case Opcode::ADDPD:
        write_vec_dst(mapPd(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](double x, double y) { return x + y; }));
        break;
      case Opcode::MULPD:
        write_vec_dst(mapPd(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](double x, double y) { return x * y; }));
        break;
      case Opcode::DIVPD:
        write_vec_dst(mapPd(read_vec_src(insn.operands[0]),
                            read_vec_src(insn.operands[1]), 128,
                            [](double x, double y) {
                                return y == 0.0 ? 0.0 : x / y;
                            }));
        break;
      case Opcode::VADDPS:
        write_vec_dst(mapPs(read_vec_src(insn.operands[1]),
                            read_vec_src(insn.operands[2]), 256,
                            [](float x, float y) {
                                return asBits(x + y);
                            }));
        break;
      case Opcode::VMULPS:
        write_vec_dst(mapPs(read_vec_src(insn.operands[1]),
                            read_vec_src(insn.operands[2]), 256,
                            [](float x, float y) {
                                return asBits(x * y);
                            }));
        break;
      case Opcode::VFMADD231PS: {
        VecReg acc = read_vec_src(insn.operands[0]);
        VecReg prod = mapPs(read_vec_src(insn.operands[1]),
                            read_vec_src(insn.operands[2]), 256,
                            [](float x, float y) {
                                return asBits(x * y);
                            });
        write_vec_dst(mapPs(acc, prod, 256, [](float x, float y) {
            return asBits(x + y);
        }));
        break;
      }

      // ------------------------------------------- counters and system
      case Opcode::RDTSC: {
        std::uint64_t tsc = first_dispatch;
        arch_.writeGpr(Reg::RAX, 64, tsc & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, tsc >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        break;
      }
      case Opcode::RDPMC: {
        if (privilege_ != Privilege::Kernel && !rdpmcUser_) {
            fatal("general protection fault: RDPMC in user mode with "
                  "CR4.PCE = 0");
        }
        std::uint32_t idx = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value;
        // The counters are sampled at the cycle the µop executes --
        // NOT serialized against older instructions (§IV-A1).
        Cycles sample = first_dispatch;
        if (idx >= kRdpmcFixedBase) {
            if (!pmu_.hasFixed())
                fatal("RDPMC: no fixed counters on ", uarch_.name);
            value = pmu_.readFixed(idx - kRdpmcFixedBase, sample);
        } else {
            if (idx >= pmu_.numProg())
                fatal("RDPMC: counter index ", idx, " out of range");
            value = pmu_.readProg(idx, sample);
        }
        arch_.writeGpr(Reg::RAX, 64, value & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, value >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        break;
      }
      case Opcode::RDMSR: {
        std::uint32_t addr = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value = readMsrAt(addr, first_dispatch);
        arch_.writeGpr(Reg::RAX, 64, value & 0xFFFFFFFF);
        arch_.writeGpr(Reg::RDX, 64, value >> 32);
        sched_.regReady[static_cast<unsigned>(Reg::RAX)] = result_ready;
        sched_.regReady[static_cast<unsigned>(Reg::RDX)] = result_ready;
        break;
      }
      case Opcode::WRMSR: {
        std::uint32_t addr = static_cast<std::uint32_t>(
            arch_.readGpr(Reg::RCX, 32));
        std::uint64_t value = (arch_.readGpr(Reg::RDX, 64) << 32) |
                              arch_.readGpr(Reg::RAX, 32);
        writeMsr(addr, value);
        // Serializing (§IV-A1).
        sched_.minDispatch = std::max(sched_.minDispatch, core_done);
        break;
      }
      case Opcode::WBINVD:
        caches_.wbinvd();
        sched_.minDispatch = std::max(sched_.minDispatch, core_done);
        break;
      case Opcode::CLFLUSH:
        caches_.clflush(memory_.translate(mem_vaddr));
        break;
      case Opcode::PREFETCHT0:
      case Opcode::PREFETCHNTA: {
        Addr paddr = memory_.translate(mem_vaddr);
        caches_.access(paddr, insn.opcode == Opcode::PREFETCHT0
                                  ? cache::AccessType::PrefetchT0
                                  : cache::AccessType::PrefetchNTA);
        // Occupies a load port but produces no register result.
        dispatchUop(ports_.loadPorts, std::max(addr_ready, issue_ready),
                    1, 0);
        break;
      }
      case Opcode::CLI:
        interruptsEnabled_ = false;
        break;
      case Opcode::STI:
        interruptsEnabled_ = true;
        scheduleNextInterrupt();
        break;

      default:
        panic("unhandled opcode in executor: ", insn.info().mnemonic);
    }

    // ---------------------------------------------------------------
    // Store µops (timing); semantic write already queued above or done
    // via write_dst.
    // ---------------------------------------------------------------
    if (d.doStoreUop) {
        NB_ASSERT(mem_op != nullptr, "store without memory operand");
        Cycles addr_rdy = std::max(addr_ready, issue_ready);
        auto sa = dispatchUop(ports_.storeAddrPorts, addr_rdy, 1, 0);
        Cycles data_rdy = std::max(result_ready, issue_ready);
        auto sd = dispatchUop(ports_.storeDataPorts, data_rdy, 1, 0);
        Cycles store_done = std::max(sa.done, sd.done);
        sched_.maxCompletion = std::max(sched_.maxCompletion, store_done);
        if (store_vec) {
            storeVec(mem_vaddr, *store_vec, store_bytes);
        } else if (store_value) {
            storeValue(mem_vaddr, *store_value, store_bytes);
        }
        result_ready = std::max(result_ready, store_done);
    } else if (has_store) {
        // PUSH/CALL already performed the write; account the µops.
        Cycles addr_rdy = std::max(addr_ready, issue_ready);
        dispatchUop(ports_.storeAddrPorts, addr_rdy, 1, 0);
        dispatchUop(ports_.storeDataPorts, addr_rdy, 1, 0);
    }

    // ---------------------------------------------------------------
    // Branch prediction and redirect.
    // ---------------------------------------------------------------
    if (is_branch) {
        std::uint64_t key = ctx.nextIdx - 1;
        auto [it, inserted] = branchTable_.try_emplace(key, 1);
        std::uint8_t &counter = it->second;
        bool predicted_taken = counter >= 2;
        if (insn.opcode == Opcode::JMP || insn.opcode == Opcode::CALL ||
            insn.opcode == Opcode::RET) {
            predicted_taken = taken; // unconditional / RAS-predicted
        }
        mispredicted = predicted_taken != taken;
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        if (mispredicted) {
            // Pipeline restart.
            Cycles redirect = core_done + 15;
            sched_.issueCycle = std::max(sched_.issueCycle, redirect);
            sched_.issuedInCycle = 0;
        }
        if (taken)
            ctx.nextIdx = branch_target;
    }

    retireInstr(result_ready, is_branch, mispredicted);
}

} // namespace nb::sim
