/**
 * @file
 * Predecoded program IR for the simulator hot path.
 *
 * Machine::executeInstr used to re-derive every static fact about an
 * instruction -- uarch::coreTiming, µop counts, operand classification,
 * zero-idiom and dest-read checks, implicit reads, flag dependencies --
 * on every *dynamic* instruction, and the Runner re-materialized the
 * full unrolled measurement code (unroll x body, one heap-allocated
 * operand vector per Instruction) on every measurement. A Program
 * caches all of that once, at decode time:
 *
 *  - Each static instruction decodes to one flat DecodedInsn entry
 *    holding the resolved core timing, pool slices for its µop port
 *    masks / source-readiness registers / address-readiness registers,
 *    and one-bit facts (load/store µop decomposition, zero idiom,
 *    flags read, branch, privileged). The executor consumes these
 *    directly; uarch::coreTiming is never called on the hot path.
 *
 *  - A Program is a sequence of *blocks*, each a pattern of entries
 *    executed `repeat` times in a row. An unrolled measurement loop
 *    body is decoded ONCE and iterated localUnrollCount times instead
 *    of being copied localUnrollCount times. Execution happens in a
 *    *virtual* instruction index space identical to the fully
 *    materialized sequence: branch-predictor keys, CALL return
 *    addresses, the RET bounds check, and the front-end footprint
 *    model all see exactly the indices the legacy vector path saw, so
 *    predecoding is measurement-invariant by construction (the golden
 *    table/profile gates prove it).
 *
 * Branch targets: an entry's `target` is relative to the start of the
 * current pattern copy unless `targetAbsolute` is set (used by the
 * measurement loop's back edge, which jumps from the loop-tail block
 * into the repeated body block). The single-segment decode of a plain
 * instruction vector starts at virtual index 0, where relative and
 * absolute targets coincide with the legacy encoding.
 */

#ifndef NB_SIM_PROGRAM_HH
#define NB_SIM_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "uarch/timing.hh"
#include "uarch/uarch.hh"
#include "x86/instruction.hh"

namespace nb::sim
{

/**
 * Handler class of a decoded instruction: one value per semantics
 * handler of the threaded executor (sim/dispatch.cc), assigned at
 * decode time so the hot loop dispatches with a single computed goto
 * instead of re-switching on the opcode per dynamic instruction.
 * Opcodes sharing one switch body in the reference executor share one
 * class; the handler disambiguates on the opcode where needed.
 */
enum class OpClass : std::uint8_t
{
    Nop,        ///< NOP, PAUSE
    Mov,        ///< MOV, MOVNTI, MOVZX
    Movsx,
    Lea,
    Xchg,
    Bswap,
    Cmov,       ///< CMOVZ/NZ/C/NC
    AddAdc,     ///< ADD, ADC
    SubSbbCmp,  ///< SUB, SBB, CMP
    Logic,      ///< AND, OR, XOR, TEST
    IncDec,
    Neg,
    Not,
    Imul,
    Mul,
    Div,        ///< DIV, IDIV
    Shift,      ///< SHL, SHR, SAR, ROL, ROR
    Popcnt,
    Lzcnt,
    Tzcnt,
    Bitscan,    ///< BSF, BSR
    BitTest,    ///< BT, BTS, BTR
    Setz,
    Setnz,
    Jmp,
    Jcc,        ///< JZ/NZ/C/NC/L/GE/LE/G
    Call,
    Ret,
    Push,
    Pop,
    MovVec,     ///< MOVAPS, MOVUPS
    Pxor,
    Paddd,
    Addps,
    Mulps,
    Divps,
    Addpd,
    Mulpd,
    Divpd,
    Vaddps,
    Vmulps,
    Vfma,       ///< VFMADD231PS
    Rdtsc,
    Rdpmc,
    Rdmsr,
    Wrmsr,
    Wbinvd,
    Clflush,
    Prefetch,   ///< PREFETCHT0, PREFETCHNTA
    Cli,
    Sti,
    PfcMarker,  ///< PFC_PAUSE, PFC_RESUME (§III-I)
    Fence,      ///< LFENCE, MFENCE
    SFence,
    Cpuid,
    Unhandled,  ///< supported by the uarch, no executor semantics
    NumClasses,
};

inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** Bits of HotTiming::flags (the one-bit facts the hot loop tests). */
namespace hotflag
{
inline constexpr std::uint16_t kZeroIdiom = 1u << 0;
inline constexpr std::uint16_t kReadsFlags = 1u << 1;
inline constexpr std::uint16_t kDoLoadUop = 1u << 2;
inline constexpr std::uint16_t kDoStoreUop = 1u << 3;
inline constexpr std::uint16_t kHasLoad = 1u << 4;
inline constexpr std::uint16_t kHasStore = 1u << 5;
inline constexpr std::uint16_t kIsBranch = 1u << 6;
inline constexpr std::uint16_t kTargetAbsolute = 1u << 7;
inline constexpr std::uint16_t kPrivileged = 1u << 8;
} // namespace hotflag

/**
 * Hot per-entry facts consumed by the issue/dispatch stage of the
 * threaded executor, packed to 12 bytes (five entries per cache line
 * alongside the one-byte OpClass array). Cold facts stay in the
 * DecodedInsn pool.
 */
struct HotTiming
{
    std::uint16_t latency = 1;
    std::uint16_t blockCycles = 0;
    std::uint16_t opWidth = 64;
    std::uint16_t flags = 0;     ///< hotflag:: bits
    std::uint16_t uopCount = 0;  ///< core µops (port-pool slice length)
    std::uint8_t nIssueUops = 1;
    std::int8_t memOpIdx = -1;
};

/**
 * Hot per-entry pool references (readiness register slices, µop port
 * slice, branch target), packed to 20 bytes.
 */
struct HotRefs
{
    std::uint32_t uopBegin = 0;
    std::uint32_t srcBegin = 0;
    std::uint32_t addrBegin = 0;
    std::int32_t target = -1;
    std::uint16_t srcCount = 0;
    std::uint16_t addrCount = 0;
};

/**
 * One predecoded instruction: every static fact the executor needs,
 * flat (pool slices instead of owned vectors). Semantics still read
 * the operands of the original instruction via Program::insn().
 */
struct DecodedInsn
{
    /** Index of the source instruction in the owning Program. */
    std::uint32_t insnIdx = 0;

    /** Branch target (see the file comment); -1 if none. */
    std::int32_t target = -1;

    // Pool slices (Program::uopPorts/srcRegs/addrRegs/dstRegs).
    std::uint32_t uopBegin = 0;  ///< core µop port masks
    std::uint32_t srcBegin = 0;  ///< registers gating source readiness
    std::uint32_t addrBegin = 0; ///< registers gating address readiness
    std::uint32_t dstBegin = 0;  ///< registers written (defs; analysis)
    std::uint16_t uopCount = 0;
    std::uint16_t srcCount = 0;
    std::uint16_t addrCount = 0;
    std::uint16_t dstCount = 0;

    // Resolved uarch::CoreTiming.
    std::uint16_t latency = 1;
    std::uint16_t blockCycles = 0;

    /** Width of operand 0 in bits (64 if no operands; up to 256 for
     *  YMM operands). */
    std::uint16_t opWidth = 64;
    /** Issue slots: max(1, core µops + load µop + 2 store µops). */
    std::uint8_t nIssueUops = 1;
    /** Operand index of the memory operand; -1 if none. */
    std::int8_t memOpIdx = -1;

    bool hasLoad = false;       ///< Instruction::isLoad()
    bool hasStore = false;      ///< Instruction::isStore()
    bool doLoadUop = false;     ///< explicit load µop dispatched
    bool doStoreUop = false;    ///< explicit store-addr/data µops
    bool zeroIdiom = false;     ///< dependency-breaking idiom
    bool readsFlags = false;    ///< OpcodeInfo::readsFlags
    bool writesFlags = false;   ///< OpcodeInfo::writesFlags
    bool isBranch = false;      ///< Instruction::isBranch()
    bool privileged = false;    ///< OpcodeInfo::privileged
    bool targetAbsolute = false;///< target is a virtual index
};

/**
 * A predecoded, repeat-encoded instruction sequence bound to one
 * microarchitecture family. Move-only: decoded entries reference
 * pools owned by the Program.
 */
class Program
{
  public:
    /** One decode input: a pattern executed `repeat` times in a row.
     *  Branch targets inside `code` are pattern-relative (assembler
     *  output indices) unless `absoluteTargets` marks them as virtual
     *  indices into the whole program. */
    struct Segment
    {
        std::vector<x86::Instruction> code;
        std::uint64_t repeat = 1;
        bool absoluteTargets = false;
    };

    /** One repeat block of the decoded program. */
    struct Block
    {
        std::uint32_t entryBegin = 0; ///< first entry of the pattern
        std::uint32_t entryCount = 0; ///< pattern length
        std::uint64_t repeat = 1;     ///< dynamic copies of the pattern
        std::uint64_t firstVirtual = 0; ///< virtual index of copy 0
    };

    Program() = default;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;
    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;

    /**
     * Decode a sequence of segments against a microarchitecture.
     * Segments with repeat == 0 or empty code contribute nothing.
     *
     * @throws nb::FatalError for opcodes the family does not support
     *         (same message the legacy executor produced; raised at
     *         decode time instead of first dynamic execution).
     */
    static Program decode(const uarch::MicroArch &ua,
                          std::vector<Segment> segments);

    /** Decode a plain instruction vector (one block, repeat 1) -- the
     *  compatibility shim behind Machine::execute(vector). */
    static Program decode(const uarch::MicroArch &ua,
                          std::vector<x86::Instruction> code);

    /** Dynamic length: total instructions when fully expanded. */
    std::uint64_t virtualSize() const { return virtualSize_; }

    /** Static length: decoded entries across all patterns. */
    std::size_t entryCount() const { return entries_.size(); }

    const std::vector<Block> &blocks() const { return blocks_; }
    const DecodedInsn &entry(std::size_t idx) const
    {
        return entries_[idx];
    }

    // Struct-of-arrays view for the threaded executor: parallel arrays
    // indexed by entry (entries and source instructions are pushed in
    // lockstep, so the entry index doubles as the instruction index).
    const OpClass *opClasses() const { return opClass_.data(); }
    const HotTiming *hotTiming() const { return hotTiming_.data(); }
    const HotRefs *hotRefs() const { return hotRefs_.data(); }
    const x86::Instruction *insnArray() const { return insns_.data(); }
    const uarch::PortMask *portPool() const { return portPool_.data(); }
    const x86::Reg *regPool() const { return regPool_.data(); }

    /** The source instruction of an entry (semantics). */
    const x86::Instruction &insn(const DecodedInsn &d) const
    {
        return insns_[d.insnIdx];
    }

    /** Pool accessors (valid for `count` elements from `begin`). */
    const uarch::PortMask *uopPorts(const DecodedInsn &d) const
    {
        return portPool_.data() + d.uopBegin;
    }
    const x86::Reg *srcRegs(const DecodedInsn &d) const
    {
        return regPool_.data() + d.srcBegin;
    }
    const x86::Reg *addrRegs(const DecodedInsn &d) const
    {
        return regPool_.data() + d.addrBegin;
    }
    /** Registers the instruction writes (explicit destination(s) plus
     *  the implicit writes). Consumed by the static analyzer; the
     *  executor keys readiness on srcRegs/addrRegs and ignores it. */
    const x86::Reg *dstRegs(const DecodedInsn &d) const
    {
        return regPool_.data() + d.dstBegin;
    }

    /**
     * Expand back to the materialized instruction vector the legacy
     * path executed: patterns copied `repeat` times, relative branch
     * targets relocated to absolute indices. For tests and debugging;
     * the executor never materializes.
     */
    std::vector<x86::Instruction> materialize() const;

  private:
    std::vector<x86::Instruction> insns_; ///< one per static entry
    std::vector<DecodedInsn> entries_;
    std::vector<Block> blocks_;
    std::vector<uarch::PortMask> portPool_;
    std::vector<x86::Reg> regPool_;
    // Hot parallel arrays (same index space as entries_).
    std::vector<OpClass> opClass_;
    std::vector<HotTiming> hotTiming_;
    std::vector<HotRefs> hotRefs_;
    std::uint64_t virtualSize_ = 0;
};

} // namespace nb::sim

#endif // NB_SIM_PROGRAM_HH
