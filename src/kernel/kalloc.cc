/**
 * @file
 * Kernel-allocator implementation.
 */

#include "kalloc.hh"

#include <algorithm>
#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"

namespace nb::kernel
{

KernelAllocator::KernelAllocator(sim::Memory &mem, Rng *rng,
                                 double frag_probability)
    : mem_(mem), rng_(rng), fragProbability_(frag_probability)
{
    NB_ASSERT(rng != nullptr, "KernelAllocator requires an RNG");
}

Addr
KernelAllocator::allocPhys(Addr pages)
{
    // Fragmentation: some other kernel allocation grabbed pages since
    // our last call.
    if (fragProbability_ > 0.0 && rng_->nextDouble() < fragProbability_)
        nextPhys_ += kPageSize * rng_->nextRange(1, 64);
    Addr base = nextPhys_;
    nextPhys_ += pages * kPageSize;
    return base;
}

Addr
KernelAllocator::allocVirt(Addr pages)
{
    Addr base = nextVirt_;
    nextVirt_ += pages * kPageSize;
    return base;
}

Allocation
KernelAllocator::kmalloc(Addr size)
{
    NB_ASSERT(size > 0 && size <= kKmallocMax,
              "kmalloc size must be in (0, 4 MB], got ", size);
    Addr pages = alignUp(size, kPageSize) / kPageSize;
    Allocation a;
    a.size = pages * kPageSize;
    a.paddr = allocPhys(pages);
    a.vaddr = allocVirt(pages);
    for (Addr i = 0; i < pages; ++i) {
        mem_.pageTable().mapPage(a.vaddr + i * kPageSize,
                                 a.paddr + i * kPageSize);
    }
    return a;
}

std::optional<Allocation>
KernelAllocator::allocContiguous(Addr size, unsigned max_attempts)
{
    Addr needed = alignUp(size, kPageSize);

    // Greedy algorithm (§IV-D): keep kmalloc-ing chunks; whenever a
    // chunk is not physically adjacent to the current run, restart the
    // run from that chunk. Budget a few non-adjacent restarts beyond
    // the minimum number of chunks.
    Addr min_chunks = (needed + kKmallocMax - 1) / kKmallocMax;
    max_attempts = std::max<unsigned>(
        max_attempts, static_cast<unsigned>(4 * min_chunks));
    std::vector<Allocation> run;
    Addr run_bytes = 0;
    unsigned attempts = 0;
    while (run_bytes < needed) {
        if (attempts++ >= max_attempts) {
            warn("allocContiguous: no physically-contiguous run of ",
                 needed, " bytes after ", max_attempts,
                 " kmalloc calls; a reboot would be proposed");
            return std::nullopt;
        }
        Addr chunk = std::min<Addr>(kKmallocMax, needed - run_bytes);
        Allocation a = kmalloc(chunk);
        bool adjacent =
            !run.empty() &&
            run.back().paddr + run.back().size == a.paddr &&
            run.back().vaddr + run.back().size == a.vaddr;
        if (run.empty() || adjacent) {
            run.push_back(a);
            run_bytes += a.size;
        } else {
            run.assign(1, a);
            run_bytes = a.size;
        }
    }

    Allocation result;
    result.vaddr = run.front().vaddr;
    result.paddr = run.front().paddr;
    result.size = run_bytes;
    return result;
}

Allocation
KernelAllocator::allocFragmented(Addr size)
{
    Addr pages = alignUp(size, kPageSize) / kPageSize;
    Allocation a;
    a.size = pages * kPageSize;
    a.vaddr = allocVirt(pages);

    // Allocate physical pages one by one and shuffle their assignment,
    // so that consecutive virtual pages land on scattered frames.
    std::vector<Addr> frames(pages);
    for (Addr i = 0; i < pages; ++i) {
        nextPhys_ += kPageSize * rng_->nextRange(0, 3); // holes
        frames[i] = nextPhys_;
        nextPhys_ += kPageSize;
    }
    for (Addr i = pages; i > 1; --i) {
        Addr j = rng_->nextBelow(i);
        std::swap(frames[i - 1], frames[j]);
    }
    a.paddr = frames[0];
    for (Addr i = 0; i < pages; ++i) {
        mem_.pageTable().mapPage(a.vaddr + i * kPageSize, frames[i]);
    }
    return a;
}

void
KernelAllocator::reboot()
{
    nextPhys_ = kPhysBase;
    nextVirt_ = kVirtBase;
}

} // namespace nb::kernel
