/**
 * @file
 * Simulated kernel memory allocation (paper §III-G, §IV-D).
 *
 * kmalloc returns physically-contiguous memory but is capped at 4 MB on
 * recent kernels. nanoBench's kernel module implements a greedy algorithm
 * that calls kmalloc repeatedly and checks whether the returned chunks
 * happen to be physically (and virtually) adjacent — which they often are
 * on a freshly booted system; if the algorithm fails, the tool proposes a
 * reboot. This class models exactly that: a physical bump allocator with
 * configurable fragmentation (the chance that an unrelated allocation
 * stole pages between two kmalloc calls), the 4 MB cap, the greedy
 * adjacency search, and a reboot() that restores the pristine state.
 */

#ifndef NB_KERNEL_KALLOC_HH
#define NB_KERNEL_KALLOC_HH

#include <optional>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/memory.hh"

namespace nb::kernel
{

/** Largest size a single kmalloc can return (recent kernels, §IV-D). */
inline constexpr Addr kKmallocMax = 4 * 1024 * 1024;

/** One allocation: virtually and physically contiguous. */
struct Allocation
{
    Addr vaddr = 0;
    Addr paddr = 0;
    Addr size = 0;
};

/** The simulated kernel allocator. */
class KernelAllocator
{
  public:
    /**
     * @param mem The machine memory system (page table to fill in).
     * @param rng Machine RNG (fragmentation draws).
     * @param frag_probability Probability that a kmalloc call is NOT
     *        adjacent to the previous one (fresh boot: ~0).
     */
    KernelAllocator(sim::Memory &mem, Rng *rng,
                    double frag_probability = 0.0);

    /**
     * Allocate @p size bytes of physically-contiguous memory (one
     * kmalloc call; @p size must be <= kKmallocMax). Always succeeds in
     * the model; adjacency to the previous call depends on
     * fragmentation.
     */
    Allocation kmalloc(Addr size);

    /**
     * Greedy physically-contiguous allocation of arbitrary size via
     * repeated kmalloc (§IV-D). Returns nullopt if no contiguous run is
     * found within the attempt budget (the caller should "reboot").
     */
    std::optional<Allocation> allocContiguous(Addr size,
                                              unsigned max_attempts = 64);

    /**
     * Map @p size bytes at @p vaddr to deliberately NON-contiguous
     * (shuffled) physical pages -- models ordinary user-space memory,
     * where the physical layout is arbitrary.
     */
    Allocation allocFragmented(Addr size);

    /** Restore the pristine just-booted state. */
    void reboot();

    void setFragProbability(double p) { fragProbability_ = p; }

    /** Physical bytes handed out so far. */
    Addr physInUse() const { return nextPhys_ - kPhysBase; }

  private:
    Addr allocPhys(Addr pages);
    Addr allocVirt(Addr pages);

    static constexpr Addr kPhysBase = 0x1000'0000;
    static constexpr Addr kVirtBase = 0x7000'0000'0000;

    sim::Memory &mem_;
    Rng *rng_;
    double fragProbability_;
    Addr nextPhys_ = kPhysBase;
    Addr nextVirt_ = kVirtBase;
};

} // namespace nb::kernel

#endif // NB_KERNEL_KALLOC_HH
