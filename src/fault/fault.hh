/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * nanoBench's value proposition is that arbitrary user code runs
 * safely under the harness; the campaign layer correspondingly claims
 * degradation paths (per-spec error outcomes, bounded retries,
 * checkpointed partial reports) that are hard to exercise on demand
 * because the simulator itself is deterministic and rarely fails. A
 * FaultPlan makes every such path reproducible: it injects failures at
 * named sites in the execution pipeline, armed via the NB_FAULT
 * environment variable or the -fault CLI option.
 *
 * Grammar (comma-separated entries):
 *
 *     site[@CYCLE][~PROB][:transient|:permanent][:xCOUNT]
 *     seed:VALUE
 *
 *  - site: one of assemble, decode, execute, worker-pickup,
 *    report-write.
 *  - @CYCLE (execute only): trip once the run has consumed at least
 *    CYCLE simulated cycles (checked at the dispatcher's amortized
 *    budget checkpoints).
 *  - ~PROB: inject with probability PROB in [0,1] per arrival at the
 *    site, drawn from a plan-owned xorshift RNG seeded by seed:VALUE
 *    (default 1) -- deterministic for a fixed plan string and arrival
 *    order. Without ~PROB every arrival injects.
 *  - :transient / :permanent: taxonomy carried into the resulting
 *    RunError (default permanent). Transient faults are retried by
 *    the campaign worker loop; permanent ones fail fast.
 *  - :xCOUNT: disarm the entry after COUNT injections (default:
 *    unlimited). "worker-pickup:transient:x2" fails the first two
 *    pickups, then behaves normally -- the retry-succeeds test shape.
 *
 * Sites check the active plan through one relaxed atomic pointer
 * load, so the disabled path costs nothing measurable.
 */

#ifndef NB_FAULT_FAULT_HH
#define NB_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace nb::fault
{

/** Named injection sites along the spec execution pipeline. */
enum class Site : std::uint8_t
{
    /** Spec assembly (Engine::runSpecOnRunner, before the memo). */
    Assemble,
    /** Measurement-program construction/decode (Runner). */
    Decode,
    /** The threaded dispatch loop, optionally at a cycle offset. */
    Execute,
    /** A campaign worker picking up a unique spec. */
    WorkerPickup,
    /** Writing a campaign report or checkpoint journal. */
    ReportWrite,
};

inline constexpr unsigned kNumSites = 5;

/** Canonical (grammar) name of a site. */
const char *siteName(Site site);

/** Thrown by an armed injection site. Derives from FatalError so
 *  fault-unaware catch sites degrade to a generic execution error;
 *  fault-aware ones preserve the site and taxonomy. */
class InjectedFault : public FatalError
{
  public:
    InjectedFault(Site site, bool transient)
        : FatalError(std::string("injected fault at site '") +
                     siteName(site) + "' (" +
                     (transient ? "transient" : "permanent") + ")"),
          site_(site), transient_(transient)
    {
    }

    Site site() const { return site_; }
    bool transient() const { return transient_; }

  private:
    Site site_;
    bool transient_;
};

/** One parsed plan entry (see the file comment for the grammar). */
struct FaultSpec
{
    Site site = Site::Assemble;
    /** Execute site only: trip at >= this many consumed cycles. */
    std::uint64_t atCycle = 0;
    /** Probability numerator out of 2^32; 2^32 == always. */
    std::uint64_t probability = std::uint64_t(1) << 32;
    bool transient = false;
    /** Injections before the entry disarms; UINT64_MAX == unlimited. */
    std::uint64_t count = ~std::uint64_t(0);
};

/**
 * A parsed, armed fault plan. Injection state (per-entry remaining
 * counts, the RNG, per-site hit statistics) sits behind one mutex so
 * campaign workers can hit sites concurrently; given a fixed plan
 * string and per-site arrival order, injection decisions are
 * deterministic. Arrivals only reach the mutex when a plan is
 * installed, so measurement runs never pay for it.
 */
class FaultPlan
{
  public:
    /** Parse a plan from the NB_FAULT / -fault grammar.
     *  @throws nb::FatalError on a malformed plan string. */
    static FaultPlan parse(const std::string &text);

    /** The plan string this plan was parsed from. */
    const std::string &text() const { return text_; }

    /** Arrive at a site; throws InjectedFault if an armed entry
     *  matches. @p cycles is the execute-site cycle offset. */
    void arrive(Site site, std::uint64_t cycles = 0);

    /** Injections delivered at @p site so far. */
    std::uint64_t injected(Site site) const;

    /** True if any entry targets @p site (armed or exhausted). */
    bool targets(Site site) const;

  private:
    struct State
    {
        std::mutex mutex;
        /** Parallel to entries_: remaining injection counts. */
        std::vector<std::uint64_t> remaining;
        std::array<std::uint64_t, kNumSites> injected{};
        std::uint64_t rng = 1;
    };

    std::string text_;
    std::vector<FaultSpec> entries_;
    std::unique_ptr<State> state_;

    FaultPlan() : state_(std::make_unique<State>()) {}
};

/** The process-global active plan, or nullptr (one relaxed load). */
FaultPlan *activePlan();

/** Install @p plan as the process-global active plan (not owned; pass
 *  nullptr to disarm). Returns the previous plan. Install before
 *  starting concurrent work; installation itself is atomic but not
 *  synchronized against in-flight arrivals. */
FaultPlan *setActivePlan(FaultPlan *plan);

/** RAII: install a plan for a scope (tests), restoring the previous
 *  active plan on destruction. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const std::string &text)
        : plan_(FaultPlan::parse(text)), prev_(setActivePlan(&plan_))
    {
    }

    ~ScopedFaultPlan() { setActivePlan(prev_); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

    FaultPlan &plan() { return plan_; }

  private:
    FaultPlan plan_;
    FaultPlan *prev_;
};

/** Arrive at @p site on the active plan, if any. The disabled path is
 *  one relaxed atomic pointer load. */
inline void
maybeInject(Site site, std::uint64_t cycles = 0)
{
    if (FaultPlan *plan = activePlan())
        plan->arrive(site, cycles);
}

/** True iff a plan is installed and targets @p site. Lets hot loops
 *  hoist the site check out of per-iteration work. */
inline bool
armedFor(Site site)
{
    FaultPlan *plan = activePlan();
    return plan != nullptr && plan->targets(site);
}

} // namespace nb::fault

#endif // NB_FAULT_FAULT_HH
