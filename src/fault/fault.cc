/**
 * @file
 * FaultPlan parsing and injection (see fault.hh for the grammar).
 */

#include "fault/fault.hh"

#include <atomic>
#include <cctype>
#include <cmath>
#include <optional>

#include "common/strings.hh"

namespace nb::fault
{

namespace
{

std::atomic<FaultPlan *> globalPlan{nullptr};

std::optional<Site>
siteFromName(const std::string &name)
{
    if (name == "assemble")
        return Site::Assemble;
    if (name == "decode")
        return Site::Decode;
    if (name == "execute")
        return Site::Execute;
    if (name == "worker-pickup")
        return Site::WorkerPickup;
    if (name == "report-write")
        return Site::ReportWrite;
    return std::nullopt;
}

std::uint64_t
parsePlanNumber(const std::string &text, const char *what)
{
    auto value = parseInt(text);
    if (!value || *value < 0)
        fatal("fault plan: bad ", what, " '", text, "'");
    return static_cast<std::uint64_t>(*value);
}

/** xorshift64 step: deterministic, seedable, no <random> weight. */
std::uint64_t
xorshift64(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

} // namespace

const char *
siteName(Site site)
{
    switch (site) {
      case Site::Assemble: return "assemble";
      case Site::Decode: return "decode";
      case Site::Execute: return "execute";
      case Site::WorkerPickup: return "worker-pickup";
      case Site::ReportWrite: return "report-write";
    }
    return "unknown";
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    plan.text_ = text;
    std::uint64_t seed = 1;
    for (const std::string &raw : split(text, ',')) {
        std::string entry = trim(raw);
        if (entry.empty())
            continue;
        if (entry.rfind("seed:", 0) == 0) {
            seed = parsePlanNumber(entry.substr(5), "seed");
            continue;
        }
        // site[@CYCLE][~PROB][:transient|:permanent][:xCOUNT]
        FaultSpec spec;
        std::size_t head = entry.find_first_of("@~:");
        std::string name = entry.substr(0, head);
        auto site = siteFromName(name);
        if (!site)
            fatal("fault plan: unknown site '", name, "' in '", entry,
                  "' (sites: assemble, decode, execute, ",
                  "worker-pickup, report-write)");
        spec.site = *site;
        std::string rest =
            head == std::string::npos ? "" : entry.substr(head);
        while (!rest.empty()) {
            char tag = rest[0];
            std::size_t next = rest.find_first_of("@~:", 1);
            std::string field = rest.substr(1, next - 1);
            rest = next == std::string::npos ? "" : rest.substr(next);
            if (tag == '@') {
                if (spec.site != Site::Execute)
                    fatal("fault plan: '@' cycle offsets only apply ",
                          "to the execute site ('", entry, "')");
                spec.atCycle = parsePlanNumber(field, "cycle offset");
            } else if (tag == '~') {
                double p = 0.0;
                try {
                    p = std::stod(field);
                } catch (const std::exception &) {
                    fatal("fault plan: bad probability '", field, "'");
                }
                if (!(p >= 0.0 && p <= 1.0))
                    fatal("fault plan: probability out of [0,1]: '",
                          field, "'");
                spec.probability = static_cast<std::uint64_t>(
                    std::llround(p * 4294967296.0));
            } else if (field == "transient") {
                spec.transient = true;
            } else if (field == "permanent") {
                spec.transient = false;
            } else if (!field.empty() && field[0] == 'x') {
                spec.count =
                    parsePlanNumber(field.substr(1), "count");
                if (spec.count == 0)
                    fatal("fault plan: zero count in '", entry, "'");
            } else {
                fatal("fault plan: unknown modifier ':", field,
                      "' in '", entry, "'");
            }
        }
        plan.entries_.push_back(spec);
    }
    plan.state_->remaining.reserve(plan.entries_.size());
    for (const FaultSpec &spec : plan.entries_)
        plan.state_->remaining.push_back(spec.count);
    plan.state_->rng = seed ? seed : 1;
    return plan;
}

void
FaultPlan::arrive(Site site, std::uint64_t cycles)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const FaultSpec &spec = entries_[i];
        if (spec.site != site || state_->remaining[i] == 0)
            continue;
        if (site == Site::Execute && cycles < spec.atCycle)
            continue;
        if (spec.probability < (std::uint64_t(1) << 32) &&
            (xorshift64(state_->rng) & 0xFFFFFFFFu) >=
                spec.probability)
            continue;
        if (state_->remaining[i] != ~std::uint64_t(0))
            --state_->remaining[i];
        ++state_->injected[static_cast<unsigned>(site)];
        throw InjectedFault(site, spec.transient);
    }
}

std::uint64_t
FaultPlan::injected(Site site) const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->injected[static_cast<unsigned>(site)];
}

bool
FaultPlan::targets(Site site) const
{
    for (const FaultSpec &spec : entries_)
        if (spec.site == site)
            return true;
    return false;
}

FaultPlan *
activePlan()
{
    return globalPlan.load(std::memory_order_relaxed);
}

FaultPlan *
setActivePlan(FaultPlan *plan)
{
    return globalPlan.exchange(plan, std::memory_order_acq_rel);
}

} // namespace nb::fault
