/**
 * @file
 * Tests for the instruction-table subsystem (§V): the plan/decode
 * split of the characterizer, the campaign-backed full-catalog
 * builder (dedup across the shared throughput/port specs, graceful
 * per-variant failures), table JSON/CSV round-trips, and diffing.
 */

#include <gtest/gtest.h>

#include "uops/table.hh"
#include "x86/assembler.hh"

namespace nb::uops
{
namespace
{

Session
skylakeSession(Engine &engine)
{
    return engine.session({});
}

// -------------------------------------------------------------- plan --

TEST(Plan, CoversTheWholeCatalog)
{
    Engine engine;
    Session session = skylakeSession(engine);
    Characterizer tool(session);
    auto plan = tool.plan();

    EXPECT_EQ(plan.rows.size(), plan.catalog.size());
    EXPECT_GE(plan.catalog.size(), 90u);
    EXPECT_TRUE(plan.hasFixedCounters);
    EXPECT_GT(plan.numPorts, 0u);

    // Every planned spec folds into a valid row; every measurable
    // variant has a throughput and a ports decoder.
    std::vector<unsigned> tput_specs(plan.rows.size(), 0);
    std::vector<unsigned> port_specs(plan.rows.size(), 0);
    for (const auto &planned : plan.specs) {
        ASSERT_LT(planned.variant, plan.rows.size());
        ASSERT_FALSE(planned.spec.code.empty());
        if (planned.role == PlannedSpec::Role::Throughput)
            ++tput_specs[planned.variant];
        else if (planned.role == PlannedSpec::Role::Ports)
            ++port_specs[planned.variant];
    }
    for (std::size_t v = 0; v < plan.rows.size(); ++v) {
        EXPECT_EQ(tput_specs[v], 1u) << plan.rows[v].asmText;
        EXPECT_EQ(port_specs[v], 1u) << plan.rows[v].asmText;
        // Rows are pre-filled by planning.
        EXPECT_FALSE(plan.rows[v].signature.empty());
        EXPECT_FALSE(plan.rows[v].asmText.empty());
    }
}

TEST(Plan, ThroughputAndPortSpecsAreCampaignDuplicates)
{
    // The throughput and port decoders of a variant read the same
    // benchmark: their specs must dedup to one execution.
    Engine engine;
    Session session = skylakeSession(engine);
    Characterizer tool(session);
    auto plan = tool.plan(
        std::vector<x86::Instruction>{x86::assemble("add RAX, RBX")[0]});
    ASSERT_EQ(plan.specs.size(), 3u); // latency + throughput + ports
    const PlannedSpec *tput = nullptr;
    const PlannedSpec *ports = nullptr;
    for (const auto &planned : plan.specs) {
        if (planned.role == PlannedSpec::Role::Throughput)
            tput = &planned;
        else if (planned.role == PlannedSpec::Role::Ports)
            ports = &planned;
    }
    ASSERT_TRUE(tput && ports);
    EXPECT_EQ(specCanonicalKey(tput->spec),
              specCanonicalKey(ports->spec));
}

TEST(Plan, KernelOnlyVariantsGetNoSpecsInUserMode)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::User;
    Session session = engine.session(opt);
    Characterizer tool(session);
    auto plan = tool.plan(
        std::vector<x86::Instruction>{x86::assemble("wbinvd")[0]});
    ASSERT_EQ(plan.rows.size(), 1u);
    EXPECT_TRUE(plan.rows[0].requiresKernelMode);
    EXPECT_TRUE(plan.specs.empty());
}

// ----------------------------------------------------------- builder --

TEST(Builder, FullCatalogRunsThroughTheCampaign)
{
    Engine engine;
    TableBuildOptions opt;
    opt.jobs = 2;
    auto build = buildInstructionTable(engine, opt);

    EXPECT_GE(build.table.rows.size(), 90u);
    EXPECT_EQ(build.table.uarch, "Skylake");
    EXPECT_EQ(build.table.mode, "kernel");
    // The shared throughput/port specs dedup: at least one cache hit
    // per measurable variant.
    EXPECT_GE(build.report.cacheHits, build.table.rows.size());
    EXPECT_EQ(build.report.jobs, 2u);
    EXPECT_EQ(build.report.errorCount(), 0u);
    EXPECT_EQ(build.table.errorCount(), 0u);

    // Spot-check ground truth through the whole campaign pipeline.
    const VariantResult *add = build.table.find("ADD_R64_R64");
    ASSERT_NE(add, nullptr);
    ASSERT_TRUE(add->latency.has_value());
    EXPECT_NEAR(*add->latency, 1.0, 0.1);
    EXPECT_NEAR(add->throughput, 0.25, 0.08);

    const VariantResult *load = build.table.find("MOV_R64_M64");
    ASSERT_NE(load, nullptr);
    ASSERT_TRUE(load->latency.has_value());
    EXPECT_NEAR(*load->latency, 4.0, 0.2);

    for (const auto &row : build.table.rows) {
        EXPECT_TRUE(row.ok()) << row.asmText;
        EXPECT_FALSE(row.requiresKernelMode) << row.asmText;
        EXPECT_GT(row.throughput, 0.0) << row.asmText;
    }
}

TEST(Builder, MatchesTheSerialCharacterizer)
{
    // The campaign path and the serial characterizeAll() path must
    // agree. Not bit-identical: the serial path runs every spec on
    // one machine whose micro-state (caches, memory) evolves, while
    // campaign workers each start from a fresh replica -- exact
    // equality is only guaranteed between identical campaign layouts
    // (test_campaign covers that).
    Engine engine;
    TableBuildOptions opt;
    opt.jobs = 4;
    auto build = buildInstructionTable(engine, opt);

    Engine fresh;
    Session session = skylakeSession(fresh);
    Characterizer tool(session);
    auto serial = tool.characterizeAll();

    ASSERT_EQ(build.table.rows.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto &a = build.table.rows[i];
        const auto &b = serial[i];
        EXPECT_EQ(a.signature, b.signature);
        EXPECT_EQ(a.latency.has_value(), b.latency.has_value())
            << a.asmText;
        // The simulated machine's caches/predictors react to which
        // specs preceded this one on its worker, shifting numbers by
        // up to ~half a cycle per instruction between layouts.
        if (a.latency && b.latency) {
            EXPECT_NEAR(*a.latency, *b.latency, 0.6 + 0.05 * *b.latency)
                << a.asmText;
        }
        EXPECT_NEAR(a.throughput, b.throughput,
                    0.6 + 0.05 * b.throughput)
            << a.asmText;
        EXPECT_NEAR(a.uops, b.uops, 0.6 + 0.05 * b.uops) << a.asmText;
    }
}

TEST(Builder, RepeatedCampaignsAreIdentical)
{
    // Same layout, fresh machines: bit-identical tables.
    TableBuildOptions opt;
    opt.jobs = 2;
    Engine engine;
    auto first = buildInstructionTable(engine, opt);
    engine.clearPool();
    auto second = buildInstructionTable(engine, opt);
    EXPECT_TRUE(diffTables(first.table, second.table,
                           /*tolerance=*/0.0)
                    .empty());
}

TEST(Builder, FailingVariantIsMarkedErroredNotFatal)
{
    // Sabotage one variant's shared throughput/port spec and run the
    // rest of the catalog: the catalog must complete with exactly
    // that variant errored.
    Engine engine;
    Session session = skylakeSession(engine);
    Characterizer tool(session);
    auto plan = tool.plan();

    std::size_t sabotaged = plan.rows.size();
    for (auto &planned : plan.specs) {
        if (plan.rows[planned.variant].signature == "NOP" &&
            planned.role != PlannedSpec::Role::Latency) {
            planned.spec.nMeasurements = 0; // InvalidSpec at runtime
            sabotaged = planned.variant;
        }
    }
    ASSERT_LT(sabotaged, plan.rows.size());

    CampaignOptions opt;
    opt.jobs = 2;
    auto campaign =
        engine.runCampaign(Characterizer::planSpecs(plan), opt);
    auto rows = Characterizer::decode(plan, campaign.outcomes);

    ASSERT_EQ(rows.size(), plan.rows.size());
    for (std::size_t v = 0; v < rows.size(); ++v) {
        if (v == sabotaged) {
            EXPECT_FALSE(rows[v].ok());
            EXPECT_NE(rows[v].error.find("invalid-spec"),
                      std::string::npos)
                << rows[v].error;
        } else {
            EXPECT_TRUE(rows[v].ok()) << rows[v].asmText;
        }
    }

    // The errored row renders as an error, not as numbers.
    EXPECT_NE(rows[sabotaged].tableRow().find("error"),
              std::string::npos);
}

TEST(Builder, FailedLatencyChainDowngradesToNullopt)
{
    Engine engine;
    Session session = skylakeSession(engine);
    Characterizer tool(session);
    auto plan = tool.plan(
        std::vector<x86::Instruction>{x86::assemble("add RAX, RBX")[0]});
    for (auto &planned : plan.specs) {
        if (planned.role == PlannedSpec::Role::Latency)
            planned.spec.unrollCount = 0; // InvalidSpec at runtime
    }
    CampaignOptions opt;
    auto campaign =
        engine.runCampaign(Characterizer::planSpecs(plan), opt);
    auto rows = Characterizer::decode(plan, campaign.outcomes);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].ok()); // throughput still measured
    EXPECT_FALSE(rows[0].latency.has_value());
    EXPECT_NEAR(rows[0].throughput, 0.25, 0.08);
}

// ------------------------------------------------------ serialization --

InstructionTable
sampleTable()
{
    InstructionTable table;
    table.uarch = "Skylake";
    table.mode = "kernel";
    VariantResult add;
    add.signature = "ADD_R64_R64";
    add.asmText = "add RAX, RBX";
    add.latency = 1.0;
    add.throughput = 0.25;
    add.uops = 1.0;
    add.portUsage = {{0, 0.25}, {1, 0.25}, {5, 0.245}, {6, 0.26}};
    table.rows.push_back(add);
    VariantResult store;
    store.signature = "MOV_M64_R64";
    store.asmText = "mov [R14], RAX";
    store.latency = std::nullopt;
    store.throughput = 1.0;
    store.uops = 2.0;
    store.portUsage = {{4, 1.0}};
    table.rows.push_back(store);
    VariantResult priv;
    priv.signature = "WBINVD";
    priv.asmText = "wbinvd";
    priv.requiresKernelMode = true;
    table.rows.push_back(priv);
    VariantResult bad;
    bad.signature = "BAD";
    bad.asmText = "bad, \"quoted\"";
    bad.error = "execution-error: it broke,\nbadly";
    table.rows.push_back(bad);
    return table;
}

void
expectTablesEqual(const InstructionTable &a, const InstructionTable &b)
{
    EXPECT_EQ(a.uarch, b.uarch);
    EXPECT_EQ(a.mode, b.mode);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        const auto &x = a.rows[i];
        const auto &y = b.rows[i];
        EXPECT_EQ(x.signature, y.signature);
        EXPECT_EQ(x.asmText, y.asmText);
        EXPECT_EQ(x.latency.has_value(), y.latency.has_value());
        if (x.latency && y.latency) {
            EXPECT_DOUBLE_EQ(*x.latency, *y.latency);
        }
        EXPECT_DOUBLE_EQ(x.throughput, y.throughput);
        EXPECT_DOUBLE_EQ(x.uops, y.uops);
        EXPECT_EQ(x.portUsage, y.portUsage);
        EXPECT_EQ(x.requiresKernelMode, y.requiresKernelMode);
        EXPECT_EQ(x.error, y.error);
    }
}

TEST(TableSerialization, JsonRoundTrip)
{
    auto table = sampleTable();
    expectTablesEqual(table,
                      InstructionTable::fromJson(table.toJson()));
}

TEST(TableSerialization, CsvRoundTrip)
{
    auto table = sampleTable();
    expectTablesEqual(table, InstructionTable::fromCsv(table.toCsv()));
}

TEST(TableSerialization, MeasuredTableRoundTripsExactly)
{
    Engine engine;
    TableBuildOptions opt;
    opt.jobs = 2;
    auto build = buildInstructionTable(engine, opt);
    expectTablesEqual(build.table,
                      InstructionTable::fromJson(build.table.toJson()));
    expectTablesEqual(build.table,
                      InstructionTable::fromCsv(build.table.toCsv()));
}

TEST(TableSerialization, FromJsonRejectsGarbage)
{
    EXPECT_THROW(InstructionTable::fromJson("nope"), FatalError);
    EXPECT_THROW(InstructionTable::fromJson("{\"rows\": ["),
                 FatalError);
    auto table = sampleTable();
    EXPECT_THROW(
        InstructionTable::fromJson(table.toJson() + table.toJson()),
        FatalError);
}

TEST(TableSerialization, FromCsvRejectsMalformedRecords)
{
    EXPECT_THROW(InstructionTable::fromCsv("# uarch: X\n"
                                           "signature,asm\n"
                                           "only,two,fields\n"),
                 FatalError);
}

TEST(TableSerialization, LoadRejectsMissingFile)
{
    EXPECT_THROW(InstructionTable::load("/nonexistent/table.json"),
                 FatalError);
}

// -------------------------------------------------------------- diff --

TEST(TableDiffing, IdenticalTablesMatch)
{
    auto table = sampleTable();
    EXPECT_TRUE(diffTables(table, table).empty());
}

TEST(TableDiffing, ReportsChangedRows)
{
    auto before = sampleTable();
    auto after = sampleTable();
    after.rows[0].latency = 3.0;
    after.rows[0].throughput = 1.0;
    after.rows[1].portUsage = {{4, 0.5}, {7, 0.5}};

    auto diff = diffTables(before, after);
    ASSERT_FALSE(diff.empty());
    bool saw_latency = false;
    bool saw_tput = false;
    bool saw_ports = false;
    for (const auto &entry : diff.entries) {
        if (entry.kind == TableDiffEntry::Kind::LatencyChanged) {
            saw_latency = true;
            EXPECT_EQ(entry.signature, "ADD_R64_R64");
        }
        saw_tput |= entry.kind ==
                    TableDiffEntry::Kind::ThroughputChanged;
        saw_ports |= entry.kind == TableDiffEntry::Kind::PortsChanged;
    }
    EXPECT_TRUE(saw_latency);
    EXPECT_TRUE(saw_tput);
    EXPECT_TRUE(saw_ports);
    EXPECT_NE(diff.format().find("latency 1.00 -> 3.00"),
              std::string::npos)
        << diff.format();
}

TEST(TableDiffing, ReportsAddedRemovedAndStatusRows)
{
    auto before = sampleTable();
    auto after = sampleTable();
    after.rows.erase(after.rows.begin() + 1); // MOV_M64_R64 removed
    VariantResult fresh;
    fresh.signature = "NEW_ONE";
    fresh.asmText = "newone";
    fresh.throughput = 1.0;
    after.rows.push_back(fresh);
    after.rows[1].requiresKernelMode = false; // WBINVD now measured
    after.rows[1].throughput = 2000.0;

    auto diff = diffTables(before, after);
    bool saw_removed = false;
    bool saw_added = false;
    bool saw_status = false;
    for (const auto &entry : diff.entries) {
        saw_removed |= entry.kind == TableDiffEntry::Kind::Removed &&
                       entry.signature == "MOV_M64_R64";
        saw_added |= entry.kind == TableDiffEntry::Kind::Added &&
                     entry.signature == "NEW_ONE";
        saw_status |= entry.kind ==
                          TableDiffEntry::Kind::StatusChanged &&
                      entry.signature == "WBINVD";
    }
    EXPECT_TRUE(saw_removed);
    EXPECT_TRUE(saw_added);
    EXPECT_TRUE(saw_status);
}

TEST(TableDiffing, RepeatedSignaturesMatchByOccurrence)
{
    // The fast and slow LEA forms share one signature; diffing a
    // table against itself must still match (k-th occurrence to k-th
    // occurrence), and a change to the second occurrence only must be
    // detected.
    InstructionTable table;
    table.uarch = "Skylake";
    table.mode = "kernel";
    VariantResult lea;
    lea.signature = "LEA_R64_M64";
    lea.asmText = "lea RAX, [RAX+8]";
    lea.latency = 0.5;
    lea.throughput = 0.5;
    table.rows.push_back(lea);
    lea.asmText = "lea RAX, [RAX+RBX*4+8]";
    lea.latency = 3.0;
    lea.throughput = 1.0;
    table.rows.push_back(lea);

    EXPECT_TRUE(diffTables(table, table).empty());

    auto changed = table;
    changed.rows[1].latency = 5.0;
    auto diff = diffTables(table, changed);
    ASSERT_EQ(diff.entries.size(), 1u);
    EXPECT_EQ(diff.entries[0].kind,
              TableDiffEntry::Kind::LatencyChanged);
}

TEST(TableDiffing, CrossUarchDiffFindsRealDifferences)
{
    // Nehalem has no AVX: those variants appear only in the Skylake
    // table, and ADC latency differs (2 cycles pre-Broadwell).
    Engine engine;
    TableBuildOptions opt;
    opt.jobs = 2;
    auto skylake = buildInstructionTable(engine, opt);
    opt.session.uarch = "Nehalem";
    auto nehalem = buildInstructionTable(engine, opt);

    auto diff = diffTables(skylake.table, nehalem.table);
    ASSERT_FALSE(diff.empty());
    bool saw_removed_avx = false;
    bool saw_adc_latency = false;
    for (const auto &entry : diff.entries) {
        saw_removed_avx |=
            entry.kind == TableDiffEntry::Kind::Removed &&
            entry.signature.find("VADDPS") != std::string::npos;
        saw_adc_latency |=
            entry.kind == TableDiffEntry::Kind::LatencyChanged &&
            entry.signature == "ADC_R64_R64";
    }
    EXPECT_TRUE(saw_removed_avx);
    EXPECT_TRUE(saw_adc_latency);
}

// ------------------------------------------------------------- lookup --

TEST(Table, FindAndErrorCount)
{
    auto table = sampleTable();
    ASSERT_NE(table.find("WBINVD"), nullptr);
    EXPECT_EQ(table.find("WBINVD")->asmText, "wbinvd");
    EXPECT_EQ(table.find("NOT_THERE"), nullptr);
    EXPECT_EQ(table.errorCount(), 1u);
}

TEST(Table, FormatListsEveryRow)
{
    auto table = sampleTable();
    auto text = table.format();
    for (const auto &row : table.rows)
        EXPECT_NE(text.find(row.asmText.substr(0, 10)),
                  std::string::npos)
            << row.asmText;
    EXPECT_NE(text.find("Skylake"), std::string::npos);
}

} // namespace
} // namespace nb::uops
