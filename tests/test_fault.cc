/**
 * @file
 * Tests for the resilience layer: cycle budgets (amortized checks in
 * the dispatch loop, typed BudgetExceeded outcomes), deterministic
 * fault injection at every named site, transient-retry semantics in
 * the campaign worker loop, checkpoint/resume bit-identity, and
 * cooperative (SIGINT) cancellation.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <mutex>

#include "core/campaign.hh"
#include "core/program_cache.hh"
#include "fault/fault.hh"

namespace nb
{
namespace
{

using core::BenchmarkSpec;

/** n distinguishable, fast specs ("nop", "nop; nop", ...). */
std::vector<BenchmarkSpec>
countingSpecs(unsigned n)
{
    std::vector<BenchmarkSpec> specs(n);
    std::string body = "nop";
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode = body;
        body += "; nop";
    }
    return specs;
}

/** The R1 lint-rule spec: the body resets the R15 loop counter every
 *  iteration, so with loopCount > 0 and linting off the loop never
 *  terminates. Exactly the would-hang shape budgets exist for. */
BenchmarkSpec
wouldHangSpec()
{
    BenchmarkSpec spec;
    spec.asmCode = "mov R15, 5";
    spec.loopCount = 10;
    spec.lintLevel = core::LintLevel::Off;
    return spec;
}

// ------------------------------------------------------ cycle budget --

TEST(Budget, WouldHangSpecSettlesAsBudgetExceeded)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec = wouldHangSpec();
    spec.cycleBudget = 500000;
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::BudgetExceeded);
    EXPECT_FALSE(outcome.error().transient);
    // The message carries the partial progress, including PMU state.
    EXPECT_NE(outcome.error().message.find("cycle budget exceeded"),
              std::string::npos);
    EXPECT_NE(outcome.error().message.find("partial PMU"),
              std::string::npos);
}

TEST(Budget, DisarmedAfterBudgetedRunOnPooledMachine)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec = wouldHangSpec();
    spec.cycleBudget = 500000;
    ASSERT_FALSE(session.run(spec).ok());
    // The pooled machine must not retain the tripped budget: an
    // unbudgeted spec on the same session runs to completion.
    BenchmarkSpec plain;
    plain.asmCode = "add RAX, RBX";
    RunOutcome outcome = session.run(plain);
    ASSERT_TRUE(outcome.ok()) << outcome.error().message;
}

TEST(Budget, GenerousBudgetDoesNotPerturbResults)
{
    Engine engine;
    BenchmarkSpec plain;
    plain.asmCode = "add RAX, RBX";
    BenchmarkSpec budgeted = plain;
    budgeted.cycleBudget = 2'000'000'000;
    // Same session, back-to-back runs: the budget check only bounds
    // execution, it never perturbs it, so the results must be
    // bit-identical.
    Session session = engine.session({});
    auto a = session.run(plain);
    auto b = session.run(budgeted);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // (specEcho differs -- summary() names the budget -- so compare
    // the measured values, not the whole document.)
    EXPECT_EQ(a.result().lastRunCycles, b.result().lastRunCycles);
    ASSERT_EQ(a.result().lines.size(), b.result().lines.size());
    for (std::size_t i = 0; i < a.result().lines.size(); ++i) {
        EXPECT_EQ(a.result().lines[i].name, b.result().lines[i].name);
        EXPECT_EQ(a.result().lines[i].value,
                  b.result().lines[i].value);
    }
}

TEST(Budget, CanonicalKeyOnlyChangesWhenArmed)
{
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX";
    std::string unbudgeted = core::specCanonicalKey(spec);
    spec.cycleBudget = 12345;
    std::string budgeted = core::specCanonicalKey(spec);
    // Budget 0 must keep pre-existing keys (and every golden artifact
    // keyed on them) byte-identical; a non-zero budget is a distinct
    // benchmark and must not collide with the unbudgeted key.
    EXPECT_NE(unbudgeted, budgeted);
    spec.cycleBudget = 0;
    EXPECT_EQ(core::specCanonicalKey(spec), unbudgeted);
}

TEST(Budget, CampaignSpecBudgetCatchesHangWithoutTouchingKeys)
{
    Engine engine;
    auto specs = countingSpecs(2);
    specs.push_back(wouldHangSpec());
    CampaignOptions opt;
    opt.specBudget = 500000;
    auto campaign = engine.runCampaign(specs, opt);
    ASSERT_EQ(campaign.outcomes.size(), 3u);
    EXPECT_TRUE(campaign.outcomes[0].ok());
    EXPECT_TRUE(campaign.outcomes[1].ok());
    ASSERT_FALSE(campaign.outcomes[2].ok());
    EXPECT_EQ(campaign.outcomes[2].error().code,
              RunError::Code::BudgetExceeded);
    EXPECT_EQ(campaign.report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::BudgetExceeded)],
              1u);
}

// --------------------------------------------------- fault-plan parse --

TEST(FaultPlan, ParsesSitesAndModifiers)
{
    auto plan = fault::FaultPlan::parse(
        "assemble:transient:x2, execute@1000, "
        "worker-pickup~0.5, seed:7");
    EXPECT_TRUE(plan.targets(fault::Site::Assemble));
    EXPECT_TRUE(plan.targets(fault::Site::Execute));
    EXPECT_TRUE(plan.targets(fault::Site::WorkerPickup));
    EXPECT_FALSE(plan.targets(fault::Site::Decode));
    EXPECT_FALSE(plan.targets(fault::Site::ReportWrite));
}

TEST(FaultPlan, RejectsMalformedPlans)
{
    EXPECT_THROW(fault::FaultPlan::parse("bogus"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("assemble@5"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("decode:x0"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("decode~2.0"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("decode:often"), FatalError);
}

TEST(FaultPlan, CountedEntryExhausts)
{
    auto plan = fault::FaultPlan::parse("decode:x2");
    EXPECT_THROW(plan.arrive(fault::Site::Decode),
                 fault::InjectedFault);
    EXPECT_THROW(plan.arrive(fault::Site::Decode),
                 fault::InjectedFault);
    EXPECT_NO_THROW(plan.arrive(fault::Site::Decode));
    EXPECT_EQ(plan.injected(fault::Site::Decode), 2u);
    // Other sites are never hit.
    EXPECT_NO_THROW(plan.arrive(fault::Site::Assemble));
}

TEST(FaultPlan, ProbabilityIsSeededAndDeterministic)
{
    auto countInjections = [](const char *text) {
        auto plan = fault::FaultPlan::parse(text);
        unsigned injected = 0;
        for (int i = 0; i < 1000; ++i) {
            try {
                plan.arrive(fault::Site::Decode);
            } catch (const fault::InjectedFault &) {
                ++injected;
            }
        }
        return injected;
    };
    unsigned a = countInjections("decode~0.5, seed:42");
    unsigned b = countInjections("decode~0.5, seed:42");
    EXPECT_EQ(a, b); // same seed, same arrivals, same decisions
    EXPECT_GT(a, 300u);
    EXPECT_LT(a, 700u);
}

// ------------------------------------------------------ injection sites --

TEST(FaultInjection, AssembleSiteBecomesAssemblyError)
{
    fault::ScopedFaultPlan scope("assemble:transient");
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX";
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::AssemblyError);
    EXPECT_TRUE(outcome.error().transient);
    EXPECT_NE(outcome.error().message.find("assemble"),
              std::string::npos);
}

TEST(FaultInjection, DecodeSiteBecomesExecutionError)
{
    fault::ScopedFaultPlan scope("decode:x1");
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX";
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::ExecutionError);
    EXPECT_FALSE(outcome.error().transient);
    EXPECT_NE(outcome.error().message.find("decode"),
              std::string::npos);
    EXPECT_EQ(scope.plan().injected(fault::Site::Decode), 1u);
}

TEST(FaultInjection, ExecuteSiteFiresAtCycleOffset)
{
    fault::ScopedFaultPlan scope("execute@100:x1");
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX";
    // The execute site is visited from the amortized dispatch
    // checkpoint (every 1024 instructions), so the run must be long
    // enough for one measurement call to get there.
    spec.unrollCount = 4000;
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::ExecutionError);
    EXPECT_NE(outcome.error().message.find("execute"),
              std::string::npos);
    EXPECT_EQ(scope.plan().injected(fault::Site::Execute), 1u);
}

TEST(FaultInjection, NoPlanMeansNoOverheadPathStillRuns)
{
    // Sanity: with no plan installed the same spec runs clean (the
    // disabled maybeInject path is a single relaxed load).
    ASSERT_EQ(fault::activePlan(), nullptr);
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX";
    EXPECT_TRUE(session.run(spec).ok());
}

// ------------------------------------------------------ retry semantics --

TEST(Retry, TransientFaultRecoversWithinBudgetedRetries)
{
    fault::ScopedFaultPlan scope("worker-pickup:transient:x2");
    Engine engine;
    CampaignOptions opt;
    opt.maxRetries = 3;
    auto campaign = engine.runCampaign(countingSpecs(4), opt);
    for (const auto &outcome : campaign.outcomes)
        EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(campaign.report.retries, 2u);
    EXPECT_EQ(campaign.report.okCount, 4u);
    EXPECT_EQ(scope.plan().injected(fault::Site::WorkerPickup), 2u);
}

TEST(Retry, PermanentFaultFailsFastWithoutRetries)
{
    fault::ScopedFaultPlan scope("worker-pickup:permanent:x1");
    Engine engine;
    CampaignOptions opt;
    opt.maxRetries = 3;
    auto campaign = engine.runCampaign(countingSpecs(4), opt);
    EXPECT_EQ(campaign.report.retries, 0u);
    EXPECT_EQ(campaign.report.okCount, 3u);
    EXPECT_EQ(campaign.report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::ExecutionError)],
              1u);
}

TEST(Retry, ExhaustedTransientFaultStaysAnError)
{
    // More injections than retries: the spec settles as a transient
    // error after maxRetries attempts instead of looping forever.
    fault::ScopedFaultPlan scope("worker-pickup:transient");
    Engine engine;
    CampaignOptions opt;
    opt.maxRetries = 2;
    auto campaign = engine.runCampaign(countingSpecs(1), opt);
    ASSERT_FALSE(campaign.outcomes[0].ok());
    EXPECT_TRUE(campaign.outcomes[0].error().transient);
    EXPECT_EQ(campaign.report.retries, 2u);
}

// --------------------------------------------------- checkpoint/resume --

/** Zero the wall-time and execution-shape fields that legitimately
 *  differ between an interrupted+resumed campaign and an
 *  uninterrupted one; everything else must match bit-for-bit. */
CampaignReport
normalized(CampaignReport report)
{
    report.wallSeconds = 0.0;
    report.perWorkerSpecs.clear();
    report.perWorkerSeconds.clear();
    report.phaseTimes = obs::PhaseTimes{};
    report.telemetry = EngineTelemetry{};
    report.resumedSpecs = 0;
    report.cancelled = false;
    return report;
}

/** Outcome identity: same ok/err shape and byte-identical payloads. */
void
expectSameOutcomes(const std::vector<RunOutcome> &a,
                   const std::vector<RunOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ok(), b[i].ok()) << i;
        if (a[i].ok()) {
            EXPECT_EQ(a[i].result().toJson(), b[i].result().toJson())
                << i;
        } else {
            EXPECT_EQ(a[i].error().code, b[i].error().code) << i;
            EXPECT_EQ(a[i].error().message, b[i].error().message) << i;
        }
    }
}

TEST(Checkpoint, InterruptedThenResumedMatchesUninterrupted)
{
    std::string ck = testing::TempDir() + "nb_ck_interrupted.jsonl";
    std::string ck2 = testing::TempDir() + "nb_ck_resumed.jsonl";

    // 6 unique specs + 1 duplicate + 1 deterministic failure, so the
    // journal carries ok entries, an error entry, and multiplicity.
    auto specs = countingSpecs(6);
    specs.push_back(specs[2]);
    BenchmarkSpec faulty;
    faulty.asmCode = "mov R14, [R14]"; // page fault at VA 0
    specs.push_back(faulty);

    CampaignOptions base;
    base.jobs = 1;
    base.freshMachinePerSpec = true; // deterministic across campaigns

    // Uninterrupted baseline.
    Engine engine_a;
    auto uninterrupted = engine_a.runCampaign(specs, base);

    // Interrupted: cancel cooperatively after the second settle; the
    // checkpoint keeps what settled.
    Engine engine_b;
    CampaignOptions interrupted_opt = base;
    interrupted_opt.checkpoint = ck;
    interrupted_opt.checkpointEvery = 1;
    interrupted_opt.cancel = std::make_shared<CancelToken>();
    std::size_t settles = 0;
    interrupted_opt.progress =
        [&](const CampaignProgress &event) {
            if (!event.starting && ++settles == 2)
                interrupted_opt.cancel->cancel();
        };
    auto interrupted = engine_b.runCampaign(specs, interrupted_opt);
    EXPECT_TRUE(interrupted.report.cancelled);
    EXPECT_GT(interrupted.report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::Cancelled)],
              0u);

    // Resume from the journal; the re-run must not re-execute what
    // settled (resumedSpecs counts them) and must complete the rest.
    Engine engine_c;
    CampaignOptions resume_opt = base;
    resume_opt.resume = ck;
    resume_opt.checkpoint = ck2;
    auto resumed = engine_c.runCampaign(specs, resume_opt);
    EXPECT_FALSE(resumed.report.cancelled);
    EXPECT_GE(resumed.report.resumedSpecs, 2u);

    expectSameOutcomes(resumed.outcomes, uninterrupted.outcomes);
    EXPECT_EQ(normalized(resumed.report).toJson(),
              normalized(uninterrupted.report).toJson());

    // The completed journal can seed a full resume: nothing runs.
    Engine engine_d;
    CampaignOptions full_resume = base;
    full_resume.resume = ck2;
    auto replayed = engine_d.runCampaign(specs, full_resume);
    EXPECT_EQ(replayed.report.resumedSpecs, 7u); // all unique specs
    expectSameOutcomes(replayed.outcomes, uninterrupted.outcomes);

    std::remove(ck.c_str());
    std::remove(ck2.c_str());
}

TEST(Checkpoint, TornTrailingLineIsIgnored)
{
    std::string ck = testing::TempDir() + "nb_ck_torn.jsonl";
    auto specs = countingSpecs(3);
    CampaignOptions opt;
    opt.jobs = 1;
    opt.freshMachinePerSpec = true;
    opt.checkpoint = ck;
    Engine engine;
    auto campaign = engine.runCampaign(specs, opt);
    ASSERT_EQ(campaign.report.okCount, 3u);

    // Simulate a kill mid-write: truncate the last journal line.
    std::ifstream in(ck);
    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    in.close();
    std::ofstream out(ck, std::ios::trunc);
    out << text.substr(0, text.size() - 40);
    out.close();

    Engine engine2;
    CampaignOptions resume_opt = opt;
    resume_opt.checkpoint.clear();
    resume_opt.resume = ck;
    auto resumed = engine2.runCampaign(specs, resume_opt);
    EXPECT_EQ(resumed.report.resumedSpecs, 2u); // torn entry re-ran
    expectSameOutcomes(resumed.outcomes, campaign.outcomes);
    std::remove(ck.c_str());
}

TEST(Checkpoint, MismatchedUarchIsRejected)
{
    std::string ck = testing::TempDir() + "nb_ck_uarch.jsonl";
    CampaignOptions opt;
    opt.jobs = 1;
    opt.checkpoint = ck;
    Engine engine;
    engine.runCampaign(countingSpecs(1), opt);

    CampaignOptions resume_opt;
    resume_opt.resume = ck;
    resume_opt.session.uarch = "Zen";
    Engine engine2;
    EXPECT_THROW(engine2.runCampaign(countingSpecs(1), resume_opt),
                 FatalError);
    std::remove(ck.c_str());
}

TEST(Checkpoint, ReportWriteFaultDegradesInsteadOfAborting)
{
    std::string ck = testing::TempDir() + "nb_ck_degrade.jsonl";
    fault::ScopedFaultPlan scope("report-write:x1");
    CampaignOptions opt;
    opt.jobs = 1;
    opt.checkpoint = ck;
    Engine engine;
    auto campaign = engine.runCampaign(countingSpecs(3), opt);
    // The campaign itself is unharmed; only the journal is disabled.
    EXPECT_EQ(campaign.report.okCount, 3u);
    EXPECT_EQ(scope.plan().injected(fault::Site::ReportWrite), 1u);
    std::remove(ck.c_str());
}

// ----------------------------------------------- report serialization --

TEST(Report, ResilienceFieldsRoundTripThroughJson)
{
    fault::ScopedFaultPlan scope("worker-pickup:transient:x1");
    Engine engine;
    CampaignOptions opt;
    opt.maxRetries = 1;
    auto campaign = engine.runCampaign(countingSpecs(2), opt);
    ASSERT_EQ(campaign.report.retries, 1u);
    auto parsed = CampaignReport::fromJson(campaign.report.toJson());
    EXPECT_EQ(parsed.retries, campaign.report.retries);
    EXPECT_EQ(parsed.resumedSpecs, campaign.report.resumedSpecs);
    EXPECT_EQ(parsed.cancelled, campaign.report.cancelled);
    EXPECT_EQ(parsed.toJson(), campaign.report.toJson());
    // The CSV rendering carries the same fields.
    std::string csv = campaign.report.toCsv();
    EXPECT_NE(csv.find("retries,1"), std::string::npos);
    EXPECT_NE(csv.find("cancelled,0"), std::string::npos);
}

// -------------------------------------------------------- cancellation --

TEST(Cancel, PreCancelledTokenSettlesEverythingAsCancelled)
{
    Engine engine;
    CampaignOptions opt;
    opt.cancel = std::make_shared<CancelToken>();
    opt.cancel->cancel();
    auto campaign = engine.runCampaign(countingSpecs(3), opt);
    EXPECT_TRUE(campaign.report.cancelled);
    ASSERT_EQ(campaign.outcomes.size(), 3u);
    for (const auto &outcome : campaign.outcomes) {
        ASSERT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.error().code, RunError::Code::Cancelled);
        EXPECT_TRUE(outcome.error().transient);
    }
}

TEST(Cancel, MidCampaignCancellationIsCleanAcrossWorkers)
{
    // Exercised under TSan in CI: four workers racing the cancel flag
    // while settling work must produce a total, data-race-free
    // report.
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 4;
    opt.cancel = std::make_shared<CancelToken>();
    std::size_t settles = 0;
    std::mutex mutex;
    opt.progress = [&](const CampaignProgress &event) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!event.starting && ++settles == 4)
            opt.cancel->cancel();
    };
    auto campaign = engine.runCampaign(countingSpecs(32), opt);
    ASSERT_EQ(campaign.outcomes.size(), 32u);
    std::size_t settled = 0;
    for (const auto &outcome : campaign.outcomes) {
        if (outcome.ok() ||
            outcome.error().code != RunError::Code::Cancelled)
            ++settled;
    }
    EXPECT_EQ(campaign.report.okCount, settled);
    EXPECT_TRUE(campaign.report.cancelled);
}

TEST(Cancel, SigintHandlerCancelsInstalledToken)
{
    auto token = std::make_shared<CancelToken>();
    installSigintCancel(token);
    std::raise(SIGINT);
    EXPECT_TRUE(token->cancelled());
    clearSigintCancel();
}

// ------------------------------------------------------ cache evictions --

TEST(Evictions, SharedProgramCacheCountsClearWhenFull)
{
    core::SharedProgramCache cache;
    // Fill past capacity (4096): the clear must be counted, not
    // silent.
    for (unsigned i = 0; i < 4097; ++i)
        cache.insert("key-" + std::to_string(i), sim::Program{});
    EXPECT_EQ(cache.stats().evictions, 4096u);
    EXPECT_EQ(cache.size(), 1u);
}

} // namespace
} // namespace nb
