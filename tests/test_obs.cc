/**
 * @file
 * Tests for the observability layer (src/obs/): metrics-registry
 * round-trips, trace-event well-formedness, execution-observer parity
 * (observation never perturbs measurement), and the predicted-vs-
 * observed consistency sweep across every modelled microarchitecture.
 */

#include <algorithm>
#include <map>
#include <gtest/gtest.h>

#include "analysis/bound.hh"
#include "core/campaign.hh"
#include "core/json.hh"
#include "obs/metrics.hh"
#include "obs/observe.hh"
#include "obs/trace.hh"
#include "uarch/uarch.hh"

namespace nb
{
namespace
{

using core::BenchmarkSpec;
using core::JsonCursor;
using core::Mode;

// --------------------------------------------------------- phases ----

TEST(PhaseTimes, ArithmeticAndTotal)
{
    obs::PhaseTimes a;
    a[obs::Phase::Codegen] = 100;
    a[obs::Phase::Execute] = 50;
    obs::PhaseTimes b;
    b[obs::Phase::Codegen] = 10;
    b[obs::Phase::Aggregate] = 5;

    obs::PhaseTimes sum = a;
    sum += b;
    EXPECT_EQ(sum[obs::Phase::Codegen], 110u);
    EXPECT_EQ(sum[obs::Phase::Execute], 50u);
    EXPECT_EQ(sum[obs::Phase::Aggregate], 5u);
    EXPECT_EQ(sum.totalNs(), 165u);
    EXPECT_EQ(sum - b, a);
}

TEST(PhaseTimes, NamesRoundTrip)
{
    for (unsigned i = 0; i < obs::kNumPhases; ++i) {
        auto phase = static_cast<obs::Phase>(i);
        EXPECT_EQ(obs::phaseIndexFromName(obs::phaseName(phase)), i);
    }
    EXPECT_EQ(obs::phaseIndexFromName("not-a-phase"), obs::kNumPhases);
}

// ------------------------------------------------------- registry ----

/** A registry with one of everything, exercised enough that every
 *  serialized field is non-trivial. */
obs::RegistrySnapshot
populatedSnapshot()
{
    static obs::Registry registry;
    static bool populated = false;
    if (!populated) {
        populated = true;
        registry.counter("campaign.specs").add(7);
        registry.counter("campaign.errors");
        registry.gauge("engine.pool_size").set(3.5);
        auto &hist =
            registry.histogram("runner.phase.execute", {10.0, 100.0});
        hist.observe(5.0);
        hist.observe(50.0);
        hist.observe(5000.0); // overflow bucket
    }
    return registry.snapshot();
}

TEST(Registry, SnapshotSortsAndCounts)
{
    obs::RegistrySnapshot snap = populatedSnapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    // Sorted by name regardless of registration order.
    EXPECT_EQ(snap.counters[0].first, "campaign.errors");
    EXPECT_EQ(snap.counters[1].second, 7u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    ASSERT_EQ(snap.histograms[0].counts.size(), 3u);
    EXPECT_EQ(snap.histograms[0].counts[2], 1u);
    EXPECT_EQ(snap.histograms[0].totalCount(), 3u);
    EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 5055.0);
}

TEST(Registry, JsonRoundTripIsExact)
{
    obs::RegistrySnapshot snap = populatedSnapshot();
    EXPECT_EQ(obs::RegistrySnapshot::fromJson(snap.toJson()), snap);
}

TEST(Registry, CsvRoundTripIsExact)
{
    obs::RegistrySnapshot snap = populatedSnapshot();
    EXPECT_EQ(obs::RegistrySnapshot::fromCsv(snap.toCsv()), snap);
}

TEST(Registry, ResetZeroesButKeepsInstruments)
{
    obs::Registry registry;
    registry.counter("c").add(4);
    auto &hist = registry.histogram("h", {1.0});
    hist.observe(0.5);
    registry.reset();
    obs::RegistrySnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].second, 0u);
    EXPECT_EQ(snap.histograms[0].totalCount(), 0u);
    // The pre-reset handle stays valid.
    registry.counter("c").add(1);
    EXPECT_EQ(registry.counter("c").value(), 1u);
}

// --------------------------------------------------------- tracer ----

/** The fields of one parsed trace event the tests assert on. */
struct ParsedEvent
{
    std::string name;
    std::string ph;
    double tid = -1;
    double ts = -1;
    bool hasTs = false;
};

/** Parse toJson() output back into events; fails the test on any
 *  structural problem (so the format stays Perfetto-loadable). */
std::vector<ParsedEvent>
parseTrace(const std::string &json)
{
    std::vector<ParsedEvent> events;
    JsonCursor cur(json);
    cur.expect('[');
    if (!cur.tryConsume(']')) {
        do {
            ParsedEvent ev;
            cur.expect('{');
            do {
                std::string key = cur.parseString();
                cur.expect(':');
                if (key == "name") {
                    ev.name = cur.parseString();
                } else if (key == "ph") {
                    ev.ph = cur.parseString();
                } else if (key == "tid") {
                    ev.tid = cur.parseNumber();
                } else if (key == "ts") {
                    ev.ts = cur.parseNumber();
                    ev.hasTs = true;
                } else {
                    cur.skipValue();
                }
            } while (cur.tryConsume(','));
            cur.expect('}');
            events.push_back(std::move(ev));
        } while (cur.tryConsume(','));
        cur.expect(']');
    }
    cur.expectEnd();
    return events;
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.begin(0, "span");
    tracer.end(0, "span");
    tracer.instant(1, "marker");
    tracer.nameLane(0, "lane");
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.toJson(), "[]\n");
}

TEST(Tracer, EventsAreWellFormedMonotonicAndPaired)
{
    obs::Tracer tracer;
    tracer.enable();
    tracer.nameLane(0, "worker 0");
    tracer.nameLane(1, "worker 1");
    tracer.begin(0, "outer", "specs", "2");
    tracer.begin(1, "other");
    tracer.begin(0, "inner");
    tracer.instant(1, "marker");
    tracer.end(0, "inner");
    tracer.end(1, "other");
    tracer.end(0, "outer");
    EXPECT_EQ(tracer.eventCount(), 9u);

    auto events = parseTrace(tracer.toJson());
    ASSERT_EQ(events.size(), 9u);

    // Timestamps are taken under the tracer lock, so they are
    // globally (hence per-lane) non-decreasing; B/E events nest
    // properly per lane; metadata events carry no timestamp.
    std::map<double, std::vector<std::string>> stacks;
    double last_ts = 0.0;
    for (const auto &ev : events) {
        EXPECT_FALSE(ev.name.empty());
        EXPECT_GE(ev.tid, 0);
        if (ev.ph == "M") {
            EXPECT_FALSE(ev.hasTs);
            EXPECT_EQ(ev.name, "thread_name");
            continue;
        }
        ASSERT_TRUE(ev.hasTs) << ev.name;
        EXPECT_GE(ev.ts, last_ts);
        last_ts = ev.ts;
        if (ev.ph == "B") {
            stacks[ev.tid].push_back(ev.name);
        } else if (ev.ph == "E") {
            ASSERT_FALSE(stacks[ev.tid].empty()) << ev.name;
            EXPECT_EQ(stacks[ev.tid].back(), ev.name);
            stacks[ev.tid].pop_back();
        } else {
            EXPECT_EQ(ev.ph, "i") << ev.name;
        }
    }
    for (const auto &[tid, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unbalanced lane " << tid;
}

TEST(Tracer, ClearDropsEventsButStaysEnabled)
{
    obs::Tracer tracer;
    tracer.enable();
    tracer.instant(0, "x");
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_TRUE(tracer.enabled());
}

// ------------------------------------------------- observer parity ---

/** Observation must never perturb measurement: the same spec on two
 *  same-seed machines, one observed, yields bit-identical results. */
TEST(Observer, AttachedObserverDoesNotPerturbResults)
{
    const auto &ua = uarch::getMicroArch("Skylake");
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RBX; mov RCX, [R14]";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 25;
    spec.nMeasurements = 3;

    sim::Machine plain_machine(ua, 42);
    core::Runner plain_runner(plain_machine, Mode::Kernel);
    RunOutcome plain = runSpecOnRunner(plain_runner, spec);

    sim::Machine observed_machine(ua, 42);
    core::Runner observed_runner(observed_machine, Mode::Kernel);
    sim::ExecObserver observer;
    observed_machine.setExecObserver(&observer);
    RunOutcome observed = runSpecOnRunner(observed_runner, spec);
    observed_machine.setExecObserver(nullptr);

    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(observed.ok());
    EXPECT_EQ(plain.result().toJson(), observed.result().toJson());
    EXPECT_EQ(plain_runner.lastRunCycles(),
              observed_runner.lastRunCycles());

    // ...and the observer actually saw the execution.
    EXPECT_GT(observer.uopsIssued, 0u);
    EXPECT_GT(observer.uopsDispatched, 0u);
    EXPECT_GT(observer.cycles, 0u);
    std::uint64_t port_total = 0;
    for (std::uint64_t uops : observer.portUops)
        port_total += uops;
    EXPECT_GT(port_total, 0u);
}

// ------------------------------------------------ observed profile ---

obs::ObservedProfile
observedAddChain(const std::string &uarch)
{
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.unrollCount = 20;
    spec.nMeasurements = 3;
    spec.warmUpCount = 1;
    return obs::observeSpec(uarch::getMicroArch(uarch), spec);
}

TEST(ObservedProfile, JsonRoundTripIsExact)
{
    obs::ObservedProfile profile = observedAddChain("Skylake");
    EXPECT_GT(profile.copies, 0u);
    EXPECT_EQ(obs::ObservedProfile::fromJson(profile.toJson()),
              profile);
}

TEST(ObservedProfile, CsvRoundTripIsExact)
{
    obs::ObservedProfile profile = observedAddChain("Skylake");
    EXPECT_EQ(obs::ObservedProfile::fromCsv(profile.toCsv()), profile);
}

TEST(ObservedProfile, FormatSideBySideMentionsBothSides)
{
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    const auto &ua = uarch::getMicroArch("Skylake");
    analysis::BoundReport bounds = analysis::analyzeBounds(ua, spec);
    obs::ObservedProfile profile = observedAddChain("Skylake");
    std::string text = obs::formatPredictedVsObserved(bounds, profile);
    EXPECT_NE(text.find("predicted bottleneck"), std::string::npos);
    EXPECT_NE(text.find("observed"), std::string::npos);
    EXPECT_NE(text.find("p0"), std::string::npos);
}

// -------------------------------------- predicted vs observed sweep --

/** The three workload shapes of the acceptance sweep. */
const std::pair<const char *, const char *> kSweepSpecs[] = {
    {"latency-chain", "add RAX, RAX"},
    {"throughput",
     "add RAX, RAX; add RBX, RBX; add RCX, RCX; add RDX, RDX"},
    {"lea-mix",
     "lea RAX, [RBX+8*RCX]; lea RDX, [RSI+RDI]; add R8, R9"},
};

/**
 * On every modelled microarchitecture, the dispatch loop's observed
 * per-port µop pressure must agree with the static bound model: same
 * total µops per copy, pressure only on ports the model binds, and
 * issue utilization within the machine's width.
 */
TEST(PredictedVsObserved, ConsistentAcrossAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        const auto &ua = uarch::getMicroArch(name);
        for (const auto &[label, body] : kSweepSpecs) {
            SCOPED_TRACE(name + " / " + label);
            BenchmarkSpec spec;
            spec.asmCode = body;
            spec.unrollCount = 20;
            spec.nMeasurements = 3;
            spec.warmUpCount = 1;
            // Without any configured or fixed counters no measurement
            // round executes at all (and there is nothing to observe)
            // -- Zen has no fixed-function counters, so give every
            // uarch its stock event file, like a real campaign would.
            spec.config = core::CounterConfig::forMicroArch(name);

            analysis::BoundReport bounds =
                analysis::analyzeBounds(ua, spec);
            obs::ObservedProfile profile = obs::observeSpec(ua, spec);

            ASSERT_GT(profile.copies, 0u);
            EXPECT_EQ(profile.issueWidth, ua.issueWidth);

            // Total dispatched port µops per copy == the model's
            // per-copy µop count (both sides count post-fusion µops).
            double predicted_uops = 0.0;
            for (const auto &use : bounds.ports)
                predicted_uops += use.uops;
            EXPECT_NEAR(profile.totalPortUops(), predicted_uops,
                        0.05 * std::max(1.0, predicted_uops));
            EXPECT_NEAR(profile.uopsDispatched, bounds.uopsPerCopy,
                        0.05 * std::max(1.0, bounds.uopsPerCopy));

            // Port bindings: pressure lands only on ports the model
            // binds, and every substantially-bound port sees some.
            // (The exact split can differ where an op has many
            // eligible ports -- the model spreads evenly, the
            // dispatcher greedily -- so the per-port comparison is a
            // binding check, not an equality check.)
            std::vector<double> predicted(profile.portUops.size(), 0.0);
            for (const auto &use : bounds.ports) {
                if (use.port < predicted.size())
                    predicted[use.port] = use.uops;
            }
            for (std::size_t p = 0; p < profile.portUops.size(); ++p) {
                SCOPED_TRACE("port " + std::to_string(p));
                if (predicted[p] == 0.0) {
                    EXPECT_LE(profile.portUops[p], 0.05);
                } else if (predicted[p] >= 0.25) {
                    EXPECT_GT(profile.portUops[p], 0.0);
                }
            }

            // The run roughly respects its own bound (pre-Haswell
            // models overlap the dependency chain with the readout
            // code slightly more, hence the slack), and the machine
            // can't issue beyond its width.
            EXPECT_GE(profile.cycles, 0.80 * bounds.bound());
            EXPECT_LE(profile.issueUtilization, 1.01);
            EXPECT_GE(profile.issueUtilization, 0.0);
        }
    }
}

// ------------------------------------------- campaign integration ----

std::vector<BenchmarkSpec>
campaignSpecs()
{
    std::vector<BenchmarkSpec> specs;
    for (const char *body :
         {"add RAX, RAX", "mov RBX, [R14]", "nop; nop", "add RCX, 1"}) {
        BenchmarkSpec spec;
        spec.asmCode = body;
        spec.asmInit = "mov [R14], R14";
        spec.unrollCount = 10;
        spec.nMeasurements = 3;
        spec.warmUpCount = 0;
        specs.push_back(spec);
    }
    return specs;
}

TEST(CampaignObservability, ReportCarriesWorkerAndPhaseTimes)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    auto campaign = engine.runCampaign(campaignSpecs(), opt);

    ASSERT_EQ(campaign.report.perWorkerSeconds.size(), 2u);
    for (double seconds : campaign.report.perWorkerSeconds)
        EXPECT_GE(seconds, 0.0);
    // Executing anything spends time in at least the execute phase.
    EXPECT_GT(campaign.report.phaseTimes[obs::Phase::Execute], 0u);

    // The new fields survive the JSON round-trip exactly.
    CampaignReport parsed =
        CampaignReport::fromJson(campaign.report.toJson());
    EXPECT_EQ(parsed.perWorkerSeconds,
              campaign.report.perWorkerSeconds);
    EXPECT_EQ(parsed.phaseTimes, campaign.report.phaseTimes);
    EXPECT_EQ(parsed.toCsv(), campaign.report.toCsv());
}

TEST(CampaignObservability, TraceCoversCampaignAndEverySpec)
{
    Engine engine;
    obs::Tracer tracer;
    tracer.enable();
    CampaignOptions opt;
    opt.jobs = 2;
    opt.trace = &tracer;
    auto specs = campaignSpecs();
    engine.runCampaign(specs, opt);

    auto events = parseTrace(tracer.toJson());
    unsigned campaign_begin = 0;
    unsigned campaign_end = 0;
    unsigned spec_begin = 0;
    for (const auto &ev : events) {
        if (ev.name == "campaign" && ev.ph == "B")
            ++campaign_begin;
        if (ev.name == "campaign" && ev.ph == "E")
            ++campaign_end;
        if (ev.ph == "B" && ev.name != "campaign")
            ++spec_begin;
    }
    EXPECT_EQ(campaign_begin, 1u);
    EXPECT_EQ(campaign_end, 1u);
    EXPECT_EQ(spec_begin, specs.size());
}

/** Golden invariance: tracing + observation leave every outcome
 *  bit-identical to a plain run (fresh engines, same seed). */
TEST(CampaignObservability, TracingAndObservationNeverChangeOutcomes)
{
    auto specs = campaignSpecs();

    Engine plain_engine;
    CampaignOptions plain_opt;
    plain_opt.jobs = 2;
    auto plain = plain_engine.runCampaign(specs, plain_opt);

    Engine observed_engine;
    obs::Tracer tracer;
    tracer.enable();
    CampaignOptions observed_opt;
    observed_opt.jobs = 2;
    observed_opt.trace = &tracer;
    observed_opt.observe = true;
    auto observed = observed_engine.runCampaign(specs, observed_opt);

    ASSERT_EQ(plain.outcomes.size(), observed.outcomes.size());
    for (std::size_t i = 0; i < plain.outcomes.size(); ++i) {
        ASSERT_TRUE(plain.outcomes[i].ok()) << i;
        ASSERT_TRUE(observed.outcomes[i].ok()) << i;
        EXPECT_EQ(plain.outcomes[i].result().toJson(),
                  observed.outcomes[i].result().toJson())
            << i;
    }

    // The observed run folded its totals into the process registry.
    EXPECT_GT(obs::Registry::process()
                  .counter("campaign.observed.uops_dispatched")
                  .value(),
              0u);
}

} // namespace
} // namespace nb
