/**
 * @file
 * Tests for the Engine / Session API: machine pooling, batch
 * execution, RunError reporting, structured-result serialization, and
 * the deprecated NanoBench shim.
 */

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "core/engine.hh"
#include "core/nanobench.hh"
#include "x86/assembler.hh"

namespace nb
{
namespace
{

using core::BenchmarkResult;
using core::BenchmarkSpec;
using core::CounterConfig;
using core::Mode;
using core::ResultLookupError;

// ------------------------------------------------------------- pool --

TEST(Engine, PoolsMachinesByKey)
{
    Engine engine;
    Session a = engine.session({});
    Session b = engine.session({});
    // Identical (uarch, mode, seed) keys share one machine.
    EXPECT_EQ(&a.machine(), &b.machine());
    EXPECT_EQ(&a.runner(), &b.runner());
    EXPECT_EQ(engine.machinesConstructed(), 1u);
    EXPECT_EQ(engine.poolHits(), 1u);
    EXPECT_EQ(engine.poolSize(), 1u);
}

TEST(Engine, DistinctKeysGetDistinctMachines)
{
    Engine engine;
    SessionOptions base;
    Session a = engine.session(base);

    SessionOptions other_seed = base;
    other_seed.seed = 7;
    Session b = engine.session(other_seed);
    EXPECT_NE(&a.machine(), &b.machine());

    SessionOptions other_mode = base;
    other_mode.mode = Mode::User;
    Session c = engine.session(other_mode);
    EXPECT_NE(&a.machine(), &c.machine());

    SessionOptions other_uarch = base;
    other_uarch.uarch = "Haswell";
    Session d = engine.session(other_uarch);
    EXPECT_NE(&a.machine(), &d.machine());

    EXPECT_EQ(engine.machinesConstructed(), 4u);
    EXPECT_EQ(engine.poolHits(), 0u);
}

TEST(Engine, RunningTwiceConstructsMachineOnce)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    EXPECT_TRUE(session.run(spec).ok());
    EXPECT_TRUE(session.run(spec).ok());
    EXPECT_EQ(engine.machinesConstructed(), 1u);
}

TEST(Engine, SessionOutlivesEngine)
{
    // The lease keeps the machine alive after the engine (or its
    // pool) is gone.
    Session session = [] {
        Engine engine;
        return engine.session({});
    }();
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    auto outcome = session.run(spec);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NEAR(outcome.result()["Core cycles"], 1.0, 0.05);
}

TEST(Engine, ClearPoolKeepsOutstandingSessionsAlive)
{
    Engine engine;
    Session a = engine.session({});
    engine.clearPool();
    EXPECT_EQ(engine.poolSize(), 0u);
    Session b = engine.session({});
    EXPECT_NE(&a.machine(), &b.machine());
    EXPECT_EQ(engine.machinesConstructed(), 2u);

    BenchmarkSpec spec;
    spec.asmCode = "nop";
    EXPECT_TRUE(a.run(spec).ok()); // old lease still valid
}

TEST(Engine, UnknownUarchThrowsAtSessionCreation)
{
    Engine engine;
    SessionOptions opt;
    opt.uarch = "NotACpu";
    EXPECT_THROW(engine.session(opt), FatalError);
}

// ------------------------------------------------------------ batch --

TEST(Session, RunBatchPreservesOrder)
{
    Engine engine;
    Session session = engine.session({});

    std::vector<BenchmarkSpec> specs(3);
    specs[0].asmCode = "nop";
    specs[1].asmCode = "nop; nop";
    specs[2].asmCode = "nop; nop; nop";
    auto outcomes = session.runBatch(specs);

    ASSERT_EQ(outcomes.size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        ASSERT_TRUE(outcomes[i].ok()) << i;
        EXPECT_NEAR(outcomes[i].result()["Instructions retired"],
                    i + 1.0, 0.05)
            << i;
    }
    EXPECT_EQ(engine.machinesConstructed(), 1u);
}

TEST(Session, BatchSurvivesFailingSpec)
{
    Engine engine;
    Session session = engine.session({});

    std::vector<BenchmarkSpec> specs(3);
    specs[0].asmCode = "add RAX, RAX";
    specs[1].asmCode = "definitely_not_x86 RAX";
    specs[2].asmCode = "imul RAX, RAX";
    auto outcomes = session.runBatch(specs);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok());
    ASSERT_FALSE(outcomes[1].ok());
    EXPECT_EQ(outcomes[1].error().code,
              RunError::Code::AssemblyError);
    ASSERT_TRUE(outcomes[2].ok());
    EXPECT_NEAR(outcomes[2].result()["Core cycles"], 3.0, 0.1);
}

// ----------------------------------------------------------- errors --

TEST(Session, InvalidAsmIsAnAssemblyError)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [[R14]";
    auto outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_FALSE(static_cast<bool>(outcome));
    EXPECT_EQ(outcome.error().code, RunError::Code::AssemblyError);
    EXPECT_THROW(outcome.resultOrThrow(), FatalError);
}

TEST(Session, EmptyBodyIsInvalidSpec)
{
    Engine engine;
    Session session = engine.session({});
    auto outcome = session.run(BenchmarkSpec{});
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::InvalidSpec);
}

TEST(Session, PrivilegedInUserModeIsAnExecutionError)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = Mode::User;
    Session session = engine.session(opt);
    BenchmarkSpec spec;
    spec.asmCode = "wbinvd";
    spec.unrollCount = 1;
    auto outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::ExecutionError);
}

TEST(Session, AperfMperfInUserModeIsUnsupported)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = Mode::User;
    Session session = engine.session(opt);
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.aperfMperf = true;
    auto outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::Unsupported);
}

TEST(Session, ZeroMeasurementsIsInvalidSpec)
{
    // Without up-front validation this crashed in applyAggregate's
    // empty-vector handling deep inside the measurement loop.
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.nMeasurements = 0;
    auto outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::InvalidSpec);
    EXPECT_NE(outcome.error().message.find("nMeasurements"),
              std::string::npos);
}

TEST(Session, ZeroUnrollCountIsInvalidSpec)
{
    // Programmatic specs bypass the CLI's clamp; the engine must
    // still reject them as data, not crash.
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.unrollCount = 0;
    auto outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::InvalidSpec);
}

TEST(Runner, InvalidSpecParametersAreFatalNotPanic)
{
    // A direct Runner::run must also reject invalid parameters up
    // front, as a user-level FatalError (not an internal-invariant
    // PanicError from the aggregate functions).
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.code = x86::assemble(spec.asmCode);
    spec.nMeasurements = 0;
    EXPECT_THROW(session.runner().run(spec), FatalError);
    spec.nMeasurements = 10;
    spec.unrollCount = 0;
    EXPECT_THROW(session.runner().run(spec), FatalError);
}

TEST(Runner, UserModeAperfMperfIsFatalUpFront)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = Mode::User;
    Session session = engine.session(opt);
    BenchmarkSpec spec;
    spec.code = x86::assemble("nop");
    spec.aperfMperf = true;
    EXPECT_THROW(session.runner().run(spec), FatalError);
}

TEST(Session, ValidateSpecClassifiesKinds)
{
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    EXPECT_FALSE(core::validateSpec(spec, Mode::User).has_value());

    spec.nMeasurements = 0;
    auto issue = core::validateSpec(spec, Mode::Kernel);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->kind, core::SpecIssue::Kind::Invalid);

    spec.nMeasurements = 10;
    spec.aperfMperf = true;
    issue = core::validateSpec(spec, Mode::User);
    ASSERT_TRUE(issue.has_value());
    EXPECT_EQ(issue->kind, core::SpecIssue::Kind::Unsupported);
    EXPECT_FALSE(core::validateSpec(spec, Mode::Kernel).has_value());
}

TEST(Session, RunErrorCodeNames)
{
    EXPECT_STREQ(runErrorCodeName(RunError::Code::InvalidSpec),
                 "invalid-spec");
    EXPECT_STREQ(runErrorCodeName(RunError::Code::AssemblyError),
                 "assembly-error");
    EXPECT_STREQ(runErrorCodeName(RunError::Code::Unsupported),
                 "unsupported");
    EXPECT_STREQ(runErrorCodeName(RunError::Code::ExecutionError),
                 "execution-error");
}

// ---------------------------------------------------------- results --

TEST(Result, FindReturnsNulloptAndIndexThrows)
{
    BenchmarkResult result;
    result.lines.push_back({"Core cycles", 4.0});
    EXPECT_EQ(result.find("Core cycles"), 4.0);
    EXPECT_EQ(result.find("No such line"), std::nullopt);
    EXPECT_TRUE(result.has("Core cycles"));
    EXPECT_FALSE(result.has("No such line"));
    EXPECT_THROW(result["No such line"], ResultLookupError);
    // ResultLookupError stays catchable as the old FatalError.
    EXPECT_THROW(result["No such line"], FatalError);
    try {
        result["No such line"];
        FAIL() << "expected ResultLookupError";
    } catch (const ResultLookupError &e) {
        EXPECT_EQ(e.missingName(), "No such line");
    }
}

TEST(Result, CarriesMetadata)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    auto result = session.runOrThrow(spec);
    EXPECT_EQ(result.uarch, "Skylake");
    EXPECT_EQ(result.mode, "kernel");
    EXPECT_NE(result.specEcho.find("add RAX, RAX"), std::string::npos);
    EXPECT_GT(result.lastRunCycles, 0u);
}

TEST(Result, JsonRoundTrip)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]";
    spec.asmInit = "mov [R14], R14";
    spec.config = CounterConfig::forMicroArch("Skylake");
    auto result = session.runOrThrow(spec);
    ASSERT_FALSE(result.lines.empty());

    auto parsed = BenchmarkResult::fromJson(result.toJson());
    EXPECT_EQ(parsed.uarch, result.uarch);
    EXPECT_EQ(parsed.mode, result.mode);
    EXPECT_EQ(parsed.specEcho, result.specEcho);
    EXPECT_EQ(parsed.lastRunCycles, result.lastRunCycles);
    ASSERT_EQ(parsed.lines.size(), result.lines.size());
    for (std::size_t i = 0; i < result.lines.size(); ++i) {
        EXPECT_EQ(parsed.lines[i].name, result.lines[i].name);
        EXPECT_EQ(parsed.lines[i].value, result.lines[i].value);
    }
}

TEST(Result, CsvRoundTrip)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "imul RAX, RAX";
    auto result = session.runOrThrow(spec);

    auto parsed = BenchmarkResult::fromCsv(result.toCsv());
    EXPECT_EQ(parsed.uarch, result.uarch);
    EXPECT_EQ(parsed.mode, result.mode);
    EXPECT_EQ(parsed.specEcho, result.specEcho);
    EXPECT_EQ(parsed.lastRunCycles, result.lastRunCycles);
    ASSERT_EQ(parsed.lines.size(), result.lines.size());
    for (std::size_t i = 0; i < result.lines.size(); ++i) {
        EXPECT_EQ(parsed.lines[i].name, result.lines[i].name);
        EXPECT_EQ(parsed.lines[i].value, result.lines[i].value);
    }
}

TEST(Result, SerializersEscapeAwkwardNames)
{
    BenchmarkResult result;
    result.uarch = "Skylake";
    result.mode = "kernel";
    result.specEcho = "asm=\"mov R14, [R14]\" unroll=100";
    result.lastRunCycles = 42;
    result.lines.push_back({"quote\"comma, \\slash", 1.25});
    result.lines.push_back({"tab\tnewline\n", -3.5});

    auto from_json = BenchmarkResult::fromJson(result.toJson());
    ASSERT_EQ(from_json.lines.size(), 2u);
    EXPECT_EQ(from_json.lines[0].name, result.lines[0].name);
    EXPECT_EQ(from_json.lines[0].value, 1.25);
    EXPECT_EQ(from_json.lines[1].name, result.lines[1].name);
    EXPECT_EQ(from_json.specEcho, result.specEcho);

    // CSV: embedded newlines are backslash-escaped line-wise, so the
    // comma/quote AND newline names both survive the round trip.
    auto from_csv = BenchmarkResult::fromCsv(result.toCsv());
    ASSERT_EQ(from_csv.lines.size(), 2u);
    EXPECT_EQ(from_csv.lines[0].name, result.lines[0].name);
    EXPECT_EQ(from_csv.lines[0].value, 1.25);
    EXPECT_EQ(from_csv.lines[1].name, result.lines[1].name);
    EXPECT_EQ(from_csv.specEcho, result.specEcho);

    // Metadata with an embedded newline must not break record
    // parsing either.
    BenchmarkResult nl_meta = result;
    nl_meta.specEcho = "asm=\"line1\nline2\"";
    auto parsed = BenchmarkResult::fromCsv(nl_meta.toCsv());
    EXPECT_EQ(parsed.specEcho, nl_meta.specEcho);
    EXPECT_EQ(parsed.lines.size(), 2u);
}

TEST(Result, FromJsonRejectsGarbage)
{
    EXPECT_THROW(BenchmarkResult::fromJson("not json"), FatalError);
    EXPECT_THROW(BenchmarkResult::fromJson("{\"lines\": ["),
                 FatalError);
    // Concatenated documents must not be silently truncated to the
    // first object.
    BenchmarkResult r;
    r.lines.push_back({"Core cycles", 1.0});
    EXPECT_THROW(BenchmarkResult::fromJson(r.toJson() + r.toJson()),
                 FatalError);
}

// --------------------------------------------- defaults & facade --

TEST(Spec, DefaultsMatchTheAdvertisedCli)
{
    // The CLI usage text promises unroll_count 100 and warm_up_count
    // 2 (the paper's §III-E front-end defaults); the spec must agree.
    BenchmarkSpec spec;
    EXPECT_EQ(spec.unrollCount, 100u);
    EXPECT_EQ(spec.warmUpCount, 2u);
    EXPECT_EQ(spec.loopCount, 0u);
    EXPECT_EQ(spec.nMeasurements, 10u);
}

TEST(Facade, DeprecatedNanoBenchStillWorks)
{
    // The shim keeps the old one-shot semantics: private machine,
    // FatalError on failure.
    core::NanoBenchOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    opt.spec.asmCode = "add RAX, RAX";
    core::NanoBench bench(opt);
    auto result = bench.run();
    EXPECT_NEAR(result["Core cycles"], 1.0, 0.05);
    EXPECT_EQ(&bench.machine(), &bench.session().machine());

    core::BenchmarkSpec bad;
    bad.asmCode = "not_x86";
    EXPECT_THROW(bench.run(bad), FatalError);
}

TEST(Facade, ConfigFileOnlyAppliesToOwnSpec)
{
    // Old facade semantics: configFile populates options().spec, but
    // a custom spec passed to run() with an empty config runs with
    // the fixed counters only.
    core::NanoBenchOptions opt;
    opt.configFile =
        std::string(core::configDir()) + "/cfg_Skylake.txt";
    opt.spec.asmCode = "nop";
    core::NanoBench bench(opt);
    EXPECT_FALSE(bench.options().spec.config.empty());
    EXPECT_GT(bench.run().lines.size(), 3u);

    core::BenchmarkSpec custom;
    custom.asmCode = "nop";
    EXPECT_EQ(bench.run(custom).lines.size(), 3u);
}

// -------------------------------------------------------- telemetry --

TEST(Telemetry, SnapshotMatchesIndividualAccessors)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;
    ASSERT_TRUE(session.run(spec).ok());

    EngineTelemetry t = engine.telemetry();
    EXPECT_EQ(t.poolSize, engine.poolSize());
    EXPECT_EQ(t.machinesConstructed, engine.machinesConstructed());
    EXPECT_EQ(t.poolHits, engine.poolHits());
    EXPECT_EQ(t.programCacheSize, engine.programCache().size());
    EXPECT_EQ(t.program, engine.programCache().stats());
    EXPECT_EQ(t.assemble, assembleCacheCounters());
    EXPECT_EQ(t.lint, analysis::lintCacheCounters());
    EXPECT_GT(t.program.misses, 0u);
}

TEST(Telemetry, JsonRoundTripIsExact)
{
    EngineTelemetry t;
    t.poolSize = 3;
    t.machinesConstructed = 7;
    t.poolHits = 11;
    t.programCacheSize = 13;
    t.program = {100, 200};
    t.assemble = {300, 400};
    t.lint = {500, 600};
    EXPECT_EQ(EngineTelemetry::fromJson(t.toJson()), t);
    EXPECT_THROW(EngineTelemetry::fromJson("nope"), FatalError);
    EXPECT_THROW(EngineTelemetry::fromJson("{\"pool_size\": 1"),
                 FatalError);
}

TEST(Telemetry, CsvAndFormatListEveryCache)
{
    Engine engine;
    EngineTelemetry t = engine.telemetry();
    std::string csv = t.toCsv();
    for (const char *key :
         {"pool_size,", "machines_constructed,", "pool_hits,",
          "program_cache_size,", "program_cache_hits,",
          "program_cache_misses,", "assemble_cache_hits,",
          "assemble_cache_misses,", "lint_cache_hits,",
          "lint_cache_misses,"}) {
        EXPECT_NE(csv.find(key), std::string::npos) << key;
    }
    std::string human = t.format();
    EXPECT_NE(human.find("machine pool"), std::string::npos);
    EXPECT_NE(human.find("program cache"), std::string::npos);
    EXPECT_NE(human.find("assemble cache"), std::string::npos);
    EXPECT_NE(human.find("lint cache"), std::string::npos);
}

TEST(Telemetry, DeprecatedAccessorsAgreeWithCounters)
{
    Engine engine;
    Session session = engine.session({});
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;
    ASSERT_TRUE(session.run(spec).ok());

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    AssembleCacheStats old_asm = assembleCacheStats();
    auto old_prog = session.runner().programCacheStats();
    analysis::LintCacheStats old_lint = analysis::lintCacheStats();
#pragma GCC diagnostic pop

    CacheStats new_asm = assembleCacheCounters();
    EXPECT_EQ(old_asm.hits, new_asm.hits);
    EXPECT_EQ(old_asm.misses, new_asm.misses);

    CacheStats new_prog = session.runner().programStats();
    EXPECT_EQ(old_prog.hits, new_prog.hits);
    EXPECT_EQ(old_prog.builds, new_prog.misses);

    CacheStats new_lint = analysis::lintCacheCounters();
    EXPECT_EQ(old_lint.hits, new_lint.hits);
    EXPECT_EQ(old_lint.misses, new_lint.misses);
}

} // namespace
} // namespace nb
