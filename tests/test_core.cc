/**
 * @file
 * Tests for the nanoBench core: counter configs (§III-J), code
 * generation (Algorithm 1), the runner (Algorithm 2, §III-C), kernel vs
 * user mode (§III-D), noMem mode (§III-I), and the kernel-module
 * virtual-file interface (§IV-C).
 */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "core/module.hh"
#include "x86/assembler.hh"
#include "x86/encoding.hh"

namespace nb::core
{
namespace
{

using x86::Opcode;

// ------------------------------------------------------------ config --

TEST(Config, ParsesEventLines)
{
    auto cfg = CounterConfig::parseString(
        "# comment\n"
        "0E.01 UOPS_ISSUED.ANY\n"
        "A1.04 UOPS_DISPATCHED_PORT.PORT_2   # trailing\n"
        "\n"
        "D1.01 MEM_LOAD_RETIRED.L1_HIT\n");
    ASSERT_EQ(cfg.events().size(), 3u);
    EXPECT_EQ(cfg.events()[0].displayName, "UOPS_ISSUED.ANY");
    EXPECT_EQ(cfg.events()[1].id, sim::EventId::UopsPort2);
}

TEST(Config, SkipsUnknownEventsWithWarning)
{
    auto cfg = CounterConfig::parseString("FF.FF NOT_A_REAL_EVENT\n"
                                          "0E.01 UOPS_ISSUED.ANY\n");
    EXPECT_EQ(cfg.events().size(), 1u);
}

TEST(Config, RoundsSplitAtCounterCount)
{
    auto cfg = CounterConfig::parseString("0E.01 A\nA1.01 B\nA1.02 C\n"
                                          "A1.04 D\nA1.08 E\n");
    auto rounds = cfg.rounds(4);
    ASSERT_EQ(rounds.size(), 2u); // 5 events on 4 counters (§III-J)
    EXPECT_EQ(rounds[0].size(), 4u);
    EXPECT_EQ(rounds[1].size(), 1u);
}

TEST(Config, ShippedFilesParse)
{
    for (const auto &name : uarch::allMicroArchNames()) {
        auto cfg = CounterConfig::forMicroArch(name);
        EXPECT_FALSE(cfg.empty()) << name;
    }
}

// ----------------------------------------------------------- codegen --

GenParams
baseParams()
{
    GenParams p;
    p.body = x86::assemble("nop");
    p.resultBase = 0x1000;
    p.readouts = {{ReadoutItem::Kind::FixedPmc, 1, "Core cycles"}};
    return p;
}

unsigned
countOpcode(const std::vector<x86::Instruction> &code, Opcode op)
{
    unsigned n = 0;
    for (const auto &insn : code)
        n += insn.opcode == op ? 1 : 0;
    return n;
}

TEST(Codegen, UnrollsBody)
{
    auto p = baseParams();
    p.localUnrollCount = 7;
    auto code = generateMeasurementCode(p);
    EXPECT_EQ(countOpcode(code, Opcode::NOP), 7u);
}

TEST(Codegen, LoopUsesR15)
{
    // Algorithm 1 line 5: loop around the unrolled copies; R15 is the
    // loop counter (§III-B).
    auto p = baseParams();
    p.loopCount = 10;
    p.localUnrollCount = 2;
    auto code = generateMeasurementCode(p);
    EXPECT_EQ(countOpcode(code, Opcode::JNZ), 1u);
    EXPECT_EQ(countOpcode(code, Opcode::DEC), 1u);
    bool r15_init = false;
    for (const auto &insn : code) {
        if (insn.opcode == Opcode::MOV && insn.operands.size() == 2 &&
            insn.operands[0].kind == x86::OperandKind::Register &&
            insn.operands[0].reg == x86::Reg::R15 &&
            insn.operands[1].imm == 10)
            r15_init = true;
    }
    EXPECT_TRUE(r15_init);
}

TEST(Codegen, ZeroUnrollOmitsBody)
{
    auto p = baseParams();
    p.localUnrollCount = 0;
    auto code = generateMeasurementCode(p);
    EXPECT_EQ(countOpcode(code, Opcode::NOP), 0u);
    // Still contains the two readouts.
    EXPECT_EQ(countOpcode(code, Opcode::RDPMC), 2u);
}

TEST(Codegen, SerializationModes)
{
    auto p = baseParams();
    p.serialize = SerializeMode::Lfence;
    EXPECT_GE(countOpcode(generateMeasurementCode(p), Opcode::LFENCE),
              4u);
    p.serialize = SerializeMode::Cpuid;
    auto cpuid_code = generateMeasurementCode(p);
    EXPECT_GE(countOpcode(cpuid_code, Opcode::CPUID), 4u);
    EXPECT_EQ(countOpcode(cpuid_code, Opcode::LFENCE), 0u);
    p.serialize = SerializeMode::None;
    EXPECT_EQ(countOpcode(generateMeasurementCode(p), Opcode::LFENCE),
              0u);
}

TEST(Codegen, NoMemModeAvoidsMemoryOperands)
{
    auto p = baseParams();
    p.noMem = true;
    p.resultBase = 0;
    auto code = generateMeasurementCode(p);
    for (const auto &insn : code) {
        EXPECT_EQ(insn.memOperand(), nullptr)
            << insn.toString() << " accesses memory in noMem mode";
    }
    // Accumulator updates: SUB on the first read, ADD on the second.
    EXPECT_EQ(countOpcode(code, Opcode::SUB), 1u);
    EXPECT_EQ(countOpcode(code, Opcode::ADD), 1u);
}

TEST(Codegen, NoMemLimitsReadoutCount)
{
    auto p = baseParams();
    p.noMem = true;
    p.resultBase = 0;
    for (unsigned i = 0; i < maxNoMemReadouts() + 1; ++i)
        p.readouts.push_back({ReadoutItem::Kind::ProgPmc, i, "X"});
    EXPECT_THROW(generateMeasurementCode(p), PanicError);
}

TEST(Codegen, BodyBranchesRelocatedPerCopy)
{
    auto p = baseParams();
    p.body = x86::assemble("l: dec RAX; jnz l");
    p.localUnrollCount = 3;
    auto code = generateMeasurementCode(p);
    // Each copy's JNZ must target its own copy's DEC.
    std::vector<std::size_t> dec_idx, jnz_idx;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i].opcode == Opcode::DEC)
            dec_idx.push_back(i);
        if (code[i].opcode == Opcode::JNZ)
            jnz_idx.push_back(i);
    }
    ASSERT_EQ(dec_idx.size(), 3u);
    ASSERT_EQ(jnz_idx.size(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_EQ(static_cast<std::size_t>(code[jnz_idx[k]].targetIdx),
                  dec_idx[k]);
    }
}

// ------------------------------------------------------------ runner --

Session
makeSession(Mode mode = Mode::Kernel, const std::string &uarch = "Skylake")
{
    // A throwaway Engine per helper call: every test gets a fresh,
    // private machine (the session's lease outlives the engine).
    Engine engine;
    SessionOptions opt;
    opt.uarch = uarch;
    opt.mode = mode;
    return engine.session(opt);
}

TEST(Runner, PaperSectionIIIAExample)
{
    // ./nanoBench.sh -asm "mov R14, [R14]" -asm_init "mov [R14], R14"
    // -config cfg_Skylake.txt   ->  §III-A output.
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 100;
    spec.warmUpCount = 2;
    spec.config = CounterConfig::forMicroArch("Skylake");
    auto result = session.runOrThrow(spec);

    EXPECT_NEAR(result["Instructions retired"], 1.00, 0.02);
    EXPECT_NEAR(result["Core cycles"], 4.00, 0.05);
    EXPECT_NEAR(result["Reference cycles"], 3.52, 0.06);
    EXPECT_NEAR(result["UOPS_ISSUED.ANY"], 1.00, 0.03);
    EXPECT_NEAR(result["UOPS_DISPATCHED_PORT.PORT_2"], 0.50, 0.05);
    EXPECT_NEAR(result["UOPS_DISPATCHED_PORT.PORT_3"], 0.50, 0.05);
    EXPECT_NEAR(result["UOPS_DISPATCHED_PORT.PORT_0"], 0.00, 0.05);
    EXPECT_NEAR(result["MEM_LOAD_RETIRED.L1_HIT"], 1.00, 0.02);
    EXPECT_NEAR(result["MEM_LOAD_RETIRED.L1_MISS"], 0.00, 0.02);
}

TEST(Runner, MultiRoundCountersAllReported)
{
    // 19 events on 4 programmable counters -> 5 rounds, automatically
    // (§III-J).
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.unrollCount = 10;
    spec.config = CounterConfig::forMicroArch("Skylake");
    auto result = session.runOrThrow(spec);
    // 3 fixed + all configured events.
    EXPECT_EQ(result.lines.size(),
              3 + CounterConfig::forMicroArch("Skylake").events().size());
}

TEST(Runner, BasicModeMatchesDefault)
{
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.unrollCount = 64;
    spec.warmUpCount = 1;
    auto normal = session.runOrThrow(spec)["Core cycles"];
    spec.basicMode = true;
    auto basic = session.runOrThrow(spec)["Core cycles"];
    EXPECT_NEAR(normal, basic, 0.1);
    EXPECT_NEAR(normal, 1.0, 0.05); // 1-cycle dependency chain
}

TEST(Runner, LoopAndUnrollCombination)
{
    // §III-F: loop_count * unroll_count executions, normalized.
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "imul RAX, RAX";
    spec.unrollCount = 10;
    spec.loopCount = 20;
    spec.warmUpCount = 2;
    auto cycles = session.runOrThrow(spec)["Core cycles"];
    EXPECT_NEAR(cycles, 3.0, 0.25);
}

TEST(Runner, RegistersRestoredAfterRun)
{
    auto session = makeSession();
    auto &arch = session.machine().arch();
    arch.writeGpr(x86::Reg::RBX, 64, 0x1234567890ULL);
    BenchmarkSpec spec;
    spec.asmCode = "mov RBX, 1; mov RSP, 2; mov R14, 3";
    spec.unrollCount = 4;
    session.runOrThrow(spec);
    // §III: "After executing the microbenchmark, nanoBench
    // automatically resets them to their previous values."
    EXPECT_EQ(arch.readGpr(x86::Reg::RBX, 64), 0x1234567890ULL);
}

TEST(Runner, MemoryAreasInitialized)
{
    // §III-G: RSP, RBP, RDI, RSI, R14 point into dedicated 1 MB areas.
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "mov [R14], R14; mov [RDI], RDI; mov [RSI], RSI; "
                   "mov [RBP], RBP; push RAX; pop RBX";
    spec.unrollCount = 2;
    EXPECT_NO_THROW(session.runOrThrow(spec));
}

TEST(Runner, UserModeRejectsPrivileged)
{
    auto session = makeSession(Mode::User);
    BenchmarkSpec spec;
    spec.asmCode = "wbinvd";
    spec.unrollCount = 1;
    EXPECT_THROW(session.runOrThrow(spec), FatalError);
}

TEST(Runner, KernelModeRunsPrivileged)
{
    auto session = makeSession(Mode::Kernel);
    BenchmarkSpec spec;
    spec.asmCode = "cli; sti";
    spec.unrollCount = 2;
    EXPECT_NO_THROW(session.runOrThrow(spec));
}

TEST(Runner, AperfMperfKernelOnly)
{
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.unrollCount = 8;
    spec.aperfMperf = true;
    auto kernel = makeSession(Mode::Kernel);
    auto result = kernel.runOrThrow(spec);
    EXPECT_TRUE(result.has("APERF"));
    EXPECT_TRUE(result.has("MPERF"));
    auto user = makeSession(Mode::User);
    EXPECT_THROW(user.runOrThrow(spec), FatalError);
}

TEST(Runner, UserModeNoisierThanKernel)
{
    // §III-D: the kernel version disables interrupts; user-space runs
    // are perturbed. Use min aggregate over several runs: the MINIMUM
    // should still be close, while single user runs fluctuate more.
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.unrollCount = 500;
    spec.loopCount = 40;
    spec.nMeasurements = 7;
    spec.warmUpCount = 1;
    spec.agg = Aggregate::Median;

    auto kernel = makeSession(Mode::Kernel);
    double k = kernel.runOrThrow(spec)["Core cycles"];
    EXPECT_NEAR(k, 1.0, 0.05);

    auto user = makeSession(Mode::User);
    double u = user.runOrThrow(spec)["Core cycles"];
    // The median still recovers a sane value (§III: repetition +
    // aggregates), just with wider tolerance.
    EXPECT_NEAR(u, 1.0, 0.4);
}

TEST(Runner, NoMemModeProducesSameCounts)
{
    // §III-I: storing counters in registers instead of memory.
    auto session = makeSession();
    BenchmarkSpec spec;
    spec.asmCode = "mov R14, [R14]";
    spec.asmInit = "mov [R14], R14";
    spec.unrollCount = 50;
    spec.warmUpCount = 1;
    spec.fixedCounters = false;
    spec.noMem = true;
    spec.config = CounterConfig::parseString(
        "D1.01 MEM_LOAD_RETIRED.L1_HIT\nD1.08 MEM_LOAD_RETIRED.L1_MISS");
    auto result = session.runOrThrow(spec);
    EXPECT_NEAR(result["MEM_LOAD_RETIRED.L1_HIT"], 1.0, 0.05);
    EXPECT_NEAR(result["MEM_LOAD_RETIRED.L1_MISS"], 0.0, 0.05);
}

TEST(Runner, ReservePhysicallyContiguousR14)
{
    auto kernel = makeSession(Mode::Kernel);
    EXPECT_TRUE(kernel.runner().reserveR14Area(16 * 1024 * 1024));
    EXPECT_GE(kernel.runner().r14AreaSize(), 16u * 1024 * 1024);
    // Contiguity check through the page table.
    auto &mem = kernel.machine().memory();
    Addr base = kernel.runner().r14Area();
    Addr pbase = mem.translate(base);
    EXPECT_EQ(mem.translate(base + 8 * 1024 * 1024),
              pbase + 8 * 1024 * 1024);

    auto user = makeSession(Mode::User);
    EXPECT_FALSE(user.runner().reserveR14Area(16 * 1024 * 1024));
}

TEST(Runner, EmptyBodyIsFatal)
{
    auto session = makeSession();
    BenchmarkSpec spec;
    EXPECT_THROW(session.runOrThrow(spec), FatalError);
}

// ------------------------------------------------------------ module --

TEST(Module, VirtualFileRoundTrip)
{
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    NanoBenchModule module(machine);
    // The raw module defaults stay 1/0 (the 100/2 defaults belong to
    // the shell front end / BenchmarkSpec, §III-E).
    EXPECT_EQ(module.readFile("/sys/nb/unroll_count"), "1");
    EXPECT_EQ(module.readFile("/sys/nb/warm_up_count"), "0");
    module.writeFile("/sys/nb/loop_count", "12");
    EXPECT_EQ(module.readFile("/sys/nb/loop_count"), "12");
    module.writeFile("/sys/nb/agg", "min");
    EXPECT_EQ(module.readFile("/sys/nb/agg"), "min");
    EXPECT_THROW(module.writeFile("/sys/nb/nope", "1"), FatalError);
    EXPECT_THROW(module.writeFile("/sys/nb/loop_count", "abc"),
                 FatalError);
}

TEST(Module, ProcNanoBenchRunsBenchmark)
{
    // §IV-C: reading /proc/nanoBench generates the code, runs the
    // benchmark, and returns the result.
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    NanoBenchModule module(machine);
    module.writeFile("/sys/nb/code", "mov R14, [R14]");
    module.writeFile("/sys/nb/init", "mov [R14], R14");
    module.writeFile("/sys/nb/unroll_count", "100");
    module.writeFile("/sys/nb/warm_up_count", "2");
    module.writeFile("/sys/nb/config",
                     "D1.01 MEM_LOAD_RETIRED.L1_HIT");
    std::string out = module.readFile("/proc/nanoBench");
    EXPECT_NE(out.find("Core cycles: 4.0"), std::string::npos) << out;
    EXPECT_NE(out.find("MEM_LOAD_RETIRED.L1_HIT: 1.00"),
              std::string::npos)
        << out;
}

TEST(Module, AcceptsRawCodeBytes)
{
    // The machine-code path (§III-E / §IV-B): encoded bytes written to
    // the code file.
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    NanoBenchModule module(machine);
    auto bytes = x86::encode(x86::assemble("add RAX, RAX"));
    module.writeFile("/sys/nb/code_bytes",
                     std::string(bytes.begin(), bytes.end()));
    module.writeFile("/sys/nb/unroll_count", "50");
    std::string out = module.readFile("/proc/nanoBench");
    EXPECT_NE(out.find("Core cycles: 1.0"), std::string::npos) << out;
}

} // namespace
} // namespace nb::core
