/**
 * @file
 * Tests for the parallel campaign executor: in-order results across
 * worker counts, error handling mid-batch, dedup-cache behaviour,
 * determinism, report serialization, and the engine stats used by the
 * benches.
 */

#include <atomic>
#include <gtest/gtest.h>

#include "core/campaign.hh"

namespace nb
{
namespace
{

using core::BenchmarkSpec;
using core::CounterConfig;
using core::Mode;

std::vector<BenchmarkSpec>
countingSpecs(unsigned n)
{
    // Spec i retires i+1 instructions per iteration, so every outcome
    // is attributable to its input position.
    std::vector<BenchmarkSpec> specs(n);
    std::string body = "nop";
    for (unsigned i = 0; i < n; ++i) {
        specs[i].asmCode = body;
        body += "; nop";
    }
    return specs;
}

// ---------------------------------------------------------- ordering --

class CampaignWorkers : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CampaignWorkers, ResultsComeBackInSpecOrder)
{
    unsigned jobs = GetParam();
    Engine engine;
    CampaignOptions opt;
    opt.jobs = jobs;
    auto specs = countingSpecs(12);
    auto campaign = engine.runCampaign(specs, opt);

    ASSERT_EQ(campaign.outcomes.size(), specs.size());
    for (unsigned i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(campaign.outcomes[i].ok()) << i;
        EXPECT_NEAR(
            campaign.outcomes[i].result()["Instructions retired"],
            i + 1.0, 0.05)
            << i;
    }

    const auto &report = campaign.report;
    EXPECT_EQ(report.jobs, std::min<unsigned>(jobs, 12));
    EXPECT_EQ(report.totalSpecs, 12u);
    EXPECT_EQ(report.uniqueSpecs, 12u);
    EXPECT_EQ(report.cacheHits, 0u);
    EXPECT_EQ(report.okCount, 12u);
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_GT(report.wallSeconds, 0.0);

    // Every worker ran its static share of the work.
    ASSERT_EQ(report.perWorkerSpecs.size(), report.jobs);
    std::size_t executed = 0;
    for (unsigned w = 0; w < report.jobs; ++w) {
        // Strided assignment: worker w gets ceil((12 - w) / jobs).
        EXPECT_EQ(report.perWorkerSpecs[w],
                  (12 - w + report.jobs - 1) / report.jobs)
            << w;
        executed += report.perWorkerSpecs[w];
    }
    EXPECT_EQ(executed, 12u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CampaignWorkers,
                         ::testing::Values(1u, 2u, 8u));

TEST(Campaign, WorkersGetPrivateMachineReplicas)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 4;
    auto campaign = engine.runCampaign(countingSpecs(8), opt);
    EXPECT_EQ(campaign.report.jobs, 4u);
    // One machine per worker, keyed (uarch, mode, seed, replica).
    EXPECT_EQ(engine.machinesConstructed(), 4u);
    EXPECT_EQ(engine.poolSize(), 4u);

    // A second campaign on the same engine reuses the warm replicas.
    engine.runCampaign(countingSpecs(8), opt);
    EXPECT_EQ(engine.machinesConstructed(), 4u);
    EXPECT_EQ(engine.poolHits(), 4u);
}

TEST(Campaign, ZeroJobsMeansHardwareConcurrency)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 0;
    auto campaign = engine.runCampaign(countingSpecs(2), opt);
    EXPECT_GE(campaign.report.jobs, 1u);
    EXPECT_LE(campaign.report.jobs, 2u); // clamped to unique specs
}

TEST(Campaign, EmptySpecListYieldsEmptyCampaign)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 4;
    auto campaign = engine.runCampaign({}, opt);
    EXPECT_TRUE(campaign.outcomes.empty());
    EXPECT_EQ(campaign.report.jobs, 0u);
    EXPECT_EQ(campaign.report.totalSpecs, 0u);
    EXPECT_EQ(engine.machinesConstructed(), 0u);
}

// ------------------------------------------------------------ errors --

TEST(Campaign, ErrorInTheMiddleDoesNotDisturbNeighbours)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    auto specs = countingSpecs(5);
    specs[2].asmCode = "definitely_not_x86 RAX";
    specs[3].asmCode = ""; // invalid: empty body
    auto campaign = engine.runCampaign(specs, opt);

    ASSERT_EQ(campaign.outcomes.size(), 5u);
    EXPECT_TRUE(campaign.outcomes[0].ok());
    EXPECT_TRUE(campaign.outcomes[1].ok());
    ASSERT_FALSE(campaign.outcomes[2].ok());
    EXPECT_EQ(campaign.outcomes[2].error().code,
              RunError::Code::AssemblyError);
    ASSERT_FALSE(campaign.outcomes[3].ok());
    EXPECT_EQ(campaign.outcomes[3].error().code,
              RunError::Code::InvalidSpec);
    ASSERT_TRUE(campaign.outcomes[4].ok());
    EXPECT_NEAR(campaign.outcomes[4].result()["Instructions retired"],
                5.0, 0.05);

    const auto &report = campaign.report;
    EXPECT_EQ(report.okCount, 3u);
    EXPECT_EQ(report.errorCount(), 2u);
    EXPECT_EQ(report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::AssemblyError)],
              1u);
    EXPECT_EQ(report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::InvalidSpec)],
              1u);
}

TEST(Campaign, InvalidSpecParametersBecomeTypedErrors)
{
    // Zero-measurement / zero-unroll specs used to crash the process
    // from inside the aggregate functions; a campaign must instead
    // report them per-spec and keep going.
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    auto specs = countingSpecs(4);
    specs[1].nMeasurements = 0;
    specs[2].unrollCount = 0;
    auto campaign = engine.runCampaign(specs, opt);

    ASSERT_EQ(campaign.outcomes.size(), 4u);
    EXPECT_TRUE(campaign.outcomes[0].ok());
    ASSERT_FALSE(campaign.outcomes[1].ok());
    EXPECT_EQ(campaign.outcomes[1].error().code,
              RunError::Code::InvalidSpec);
    ASSERT_FALSE(campaign.outcomes[2].ok());
    EXPECT_EQ(campaign.outcomes[2].error().code,
              RunError::Code::InvalidSpec);
    EXPECT_TRUE(campaign.outcomes[3].ok());
    EXPECT_EQ(campaign.report.errorHistogram[static_cast<unsigned>(
                  RunError::Code::InvalidSpec)],
              2u);
}

TEST(Campaign, UserModeAperfMperfIsUnsupported)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    opt.session.mode = Mode::User;
    auto specs = countingSpecs(3);
    specs[1].aperfMperf = true;
    auto campaign = engine.runCampaign(specs, opt);
    ASSERT_FALSE(campaign.outcomes[1].ok());
    EXPECT_EQ(campaign.outcomes[1].error().code,
              RunError::Code::Unsupported);
    EXPECT_TRUE(campaign.outcomes[0].ok());
    EXPECT_TRUE(campaign.outcomes[2].ok());
}

TEST(Campaign, ResolvedJobsNeverReturnsZero)
{
    CampaignOptions opt;
    opt.jobs = 0;
    EXPECT_GE(opt.resolvedJobs(), 1u);
    opt.jobs = 3;
    EXPECT_EQ(opt.resolvedJobs(), 3u);
}

TEST(Campaign, UnknownUarchThrowsBeforeAnyWork)
{
    Engine engine;
    CampaignOptions opt;
    opt.session.uarch = "NotACpu";
    std::atomic<bool> progressed{false};
    opt.progress = [&](const CampaignProgress &) {
        progressed = true;
    };
    EXPECT_THROW(engine.runCampaign(countingSpecs(3), opt),
                 FatalError);
    EXPECT_FALSE(progressed.load());
    EXPECT_EQ(engine.machinesConstructed(), 0u);
}

// ------------------------------------------------------------- dedup --

TEST(Campaign, DedupSharesOutcomesOfIdenticalSpecs)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    // 9 input specs, 3 unique.
    std::vector<BenchmarkSpec> specs;
    for (int round = 0; round < 3; ++round)
        for (const auto &spec : countingSpecs(3))
            specs.push_back(spec);
    auto campaign = engine.runCampaign(specs, opt);

    ASSERT_EQ(campaign.outcomes.size(), 9u);
    EXPECT_EQ(campaign.report.uniqueSpecs, 3u);
    EXPECT_EQ(campaign.report.cacheHits, 6u);
    EXPECT_EQ(campaign.report.okCount, 9u);
    std::size_t executed = 0;
    for (auto count : campaign.report.perWorkerSpecs)
        executed += count;
    EXPECT_EQ(executed, 3u);

    // A duplicate resolves to exactly the first occurrence's result.
    for (unsigned i = 0; i < 9; ++i) {
        const auto &first = campaign.outcomes[i % 3].result();
        const auto &here = campaign.outcomes[i].result();
        ASSERT_EQ(here.lines.size(), first.lines.size());
        for (std::size_t l = 0; l < first.lines.size(); ++l)
            EXPECT_EQ(here.lines[l].value, first.lines[l].value);
    }
}

TEST(Campaign, DedupCanBeOptedOut)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 1;
    opt.dedup = false;
    std::vector<BenchmarkSpec> specs(4);
    for (auto &spec : specs)
        spec.asmCode = "add RAX, RAX";
    auto campaign = engine.runCampaign(specs, opt);
    EXPECT_EQ(campaign.report.uniqueSpecs, 4u);
    EXPECT_EQ(campaign.report.cacheHits, 0u);
    ASSERT_EQ(campaign.report.perWorkerSpecs.size(), 1u);
    EXPECT_EQ(campaign.report.perWorkerSpecs[0], 4u);
}

TEST(Campaign, CanonicalKeySeparatesSpecParameters)
{
    BenchmarkSpec a;
    a.asmCode = "add RAX, RAX";
    BenchmarkSpec b = a;
    EXPECT_EQ(specCanonicalKey(a), specCanonicalKey(b));
    EXPECT_EQ(specHash(a), specHash(b));

    b.unrollCount = 50;
    EXPECT_NE(specCanonicalKey(a), specCanonicalKey(b));

    b = a;
    b.asmInit = "mov RAX, 0";
    EXPECT_NE(specCanonicalKey(a), specCanonicalKey(b));

    b = a;
    b.serialize = core::SerializeMode::None;
    EXPECT_NE(specCanonicalKey(a), specCanonicalKey(b));

    b = a;
    b.config = CounterConfig::forMicroArch("Skylake");
    EXPECT_NE(specCanonicalKey(a), specCanonicalKey(b));

    // Field boundaries are length-prefixed: shifting a character
    // between adjacent string fields must change the key.
    BenchmarkSpec c, d;
    c.asmCode = "nop; n";
    c.asmInit = "op";
    d.asmCode = "nop; ";
    d.asmInit = "nop";
    EXPECT_NE(specCanonicalKey(c), specCanonicalKey(d));
}

// ------------------------------------------------------ determinism --

TEST(Campaign, RepeatedRunsWithSameSeedAreIdentical)
{
    CampaignOptions opt;
    opt.jobs = 4;
    opt.session.seed = 7;
    auto specs = countingSpecs(10);
    specs.push_back(specs[3]); // exercise dedup in the comparison too

    Engine engine;
    auto first = engine.runCampaign(specs, opt);
    // Fresh machines via clearPool(): same seed, same static
    // assignment, so the outcomes must be bit-identical.
    engine.clearPool();
    auto second = engine.runCampaign(specs, opt);

    ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
    for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
        ASSERT_EQ(first.outcomes[i].ok(), second.outcomes[i].ok());
        const auto &a = first.outcomes[i].result();
        const auto &b = second.outcomes[i].result();
        ASSERT_EQ(a.lines.size(), b.lines.size());
        for (std::size_t l = 0; l < a.lines.size(); ++l) {
            EXPECT_EQ(a.lines[l].name, b.lines[l].name);
            EXPECT_EQ(a.lines[l].value, b.lines[l].value) << i;
        }
    }
    EXPECT_EQ(first.report.perWorkerSpecs,
              second.report.perWorkerSpecs);
}

// ---------------------------------------------------------- progress --

TEST(Campaign, ProgressSettlesEveryInputSpec)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    std::vector<std::size_t> seen;
    std::size_t starts = 0;
    opt.progress = [&](const CampaignProgress &event) {
        EXPECT_EQ(event.total, 6u);
        // Every event names the spec in flight.
        EXPECT_FALSE(event.specKey.empty());
        EXPECT_FALSE(event.specLabel.empty());
        if (event.starting)
            ++starts;
        else
            seen.push_back(event.done);
    };
    auto specs = countingSpecs(4);
    specs.push_back(specs[0]);
    specs.push_back(specs[1]);
    engine.runCampaign(specs, opt);

    // One start + one settle per executed unique spec; the running
    // "done" count is strictly increasing and ends at the input spec
    // count (duplicates settle with their unique spec).
    EXPECT_EQ(starts, 4u);
    ASSERT_EQ(seen.size(), 4u);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GT(seen[i], seen[i - 1]);
    EXPECT_EQ(seen.back(), 6u);
}

// --------------------------------------------------------- spec file --

TEST(SpecFile, PlainLinesAndCommentsParse)
{
    core::BenchmarkSpec defaults;
    defaults.asmInit = "mov [R14], R14";
    defaults.unrollCount = 25;
    auto entries = parseSpecLines("# header comment\n"
                                  "add RAX, RAX\n"
                                  "\n"
                                  "mov R14, [R14]\n",
                                  defaults);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].lineNumber, 2u);
    EXPECT_FALSE(entries[0].error.has_value());
    EXPECT_EQ(entries[0].spec.asmCode, "add RAX, RAX");
    // Shared defaults are inherited (except the body itself).
    EXPECT_EQ(entries[0].spec.asmInit, "mov [R14], R14");
    EXPECT_EQ(entries[0].spec.unrollCount, 25u);
    EXPECT_EQ(entries[1].lineNumber, 4u);
    EXPECT_EQ(entries[1].spec.asmCode, "mov R14, [R14]");
}

TEST(SpecFile, PerLineOptionsOverrideDefaults)
{
    core::BenchmarkSpec defaults;
    auto entries = parseSpecLines(
        "-asm \"div RBX\" -agg min -unroll_count 10 -basic_mode\n",
        defaults);
    ASSERT_EQ(entries.size(), 1u);
    ASSERT_FALSE(entries[0].error.has_value());
    EXPECT_EQ(entries[0].spec.asmCode, "div RBX");
    EXPECT_EQ(entries[0].spec.agg, Aggregate::Minimum);
    EXPECT_EQ(entries[0].spec.unrollCount, 10u);
    EXPECT_TRUE(entries[0].spec.basicMode);
}

TEST(SpecFile, MalformedLinesAreErrorsWithLineNumbers)
{
    core::BenchmarkSpec defaults;
    // A bad -agg name hits parseAggregate's fatal(); it must come
    // back as a per-line error naming the line, not kill the process.
    auto entries = parseSpecLines("nop\n"
                                  "-asm \"nop\" -agg bogus\n"
                                  "-asm \"nop\" -frobnicate\n"
                                  "-asm \"nop\" -unroll_count\n"
                                  "-agg min\n"
                                  "-asm \"unterminated\n",
                                  defaults);
    ASSERT_EQ(entries.size(), 6u);
    EXPECT_FALSE(entries[0].error.has_value());
    for (std::size_t i = 1; i < entries.size(); ++i) {
        ASSERT_TRUE(entries[i].error.has_value()) << i;
        EXPECT_EQ(entries[i].error->code, RunError::Code::InvalidSpec)
            << i;
        EXPECT_NE(entries[i].error->message.find(
                      "line " + std::to_string(i + 1)),
                  std::string::npos)
            << entries[i].error->message;
    }
    EXPECT_NE(entries[1].error->message.find("bogus"),
              std::string::npos);
    EXPECT_NE(entries[2].error->message.find("-frobnicate"),
              std::string::npos);
    EXPECT_NE(entries[4].error->message.find("no -asm body"),
              std::string::npos);
}

TEST(SpecFile, ParsedSpecsRunAsACampaign)
{
    core::BenchmarkSpec defaults;
    auto entries = parseSpecLines("nop\n"
                                  "-asm \"nop; nop\" -agg min\n",
                                  defaults);
    std::vector<core::BenchmarkSpec> specs;
    for (const auto &entry : entries)
        specs.push_back(entry.spec);
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    auto campaign = engine.runCampaign(specs, opt);
    ASSERT_EQ(campaign.outcomes.size(), 2u);
    EXPECT_TRUE(campaign.outcomes[0].ok());
    ASSERT_TRUE(campaign.outcomes[1].ok());
    EXPECT_NEAR(campaign.outcomes[1].result()["Instructions retired"],
                2.0, 0.05);
}

// ------------------------------------------------------------ report --

TEST(CampaignReport, JsonRoundTrip)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    auto specs = countingSpecs(5);
    specs[1].asmCode = "not_x86_at_all";
    specs.push_back(specs[0]);
    auto campaign = engine.runCampaign(specs, opt);

    auto parsed = CampaignReport::fromJson(campaign.report.toJson());
    EXPECT_EQ(parsed.jobs, campaign.report.jobs);
    EXPECT_EQ(parsed.totalSpecs, campaign.report.totalSpecs);
    EXPECT_EQ(parsed.uniqueSpecs, campaign.report.uniqueSpecs);
    EXPECT_EQ(parsed.cacheHits, campaign.report.cacheHits);
    EXPECT_EQ(parsed.okCount, campaign.report.okCount);
    EXPECT_EQ(parsed.wallSeconds, campaign.report.wallSeconds);
    EXPECT_EQ(parsed.perWorkerSpecs, campaign.report.perWorkerSpecs);
    EXPECT_EQ(parsed.errorHistogram, campaign.report.errorHistogram);
    EXPECT_EQ(parsed.telemetry, campaign.report.telemetry);
}

TEST(CampaignReport, FromJsonRejectsGarbage)
{
    EXPECT_THROW(CampaignReport::fromJson("nope"), FatalError);
    EXPECT_THROW(CampaignReport::fromJson("{\"jobs\": 1"), FatalError);
    EXPECT_THROW(
        CampaignReport::fromJson(
            "{\"errors\": {\"no-such-code\": 1}}"),
        FatalError);
    CampaignReport r;
    EXPECT_THROW(CampaignReport::fromJson(r.toJson() + r.toJson()),
                 FatalError);
}

TEST(CampaignReport, CsvListsCountersAndErrors)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 1;
    auto specs = countingSpecs(2);
    specs[0].asmCode = "bad_mnemonic";
    auto campaign = engine.runCampaign(specs, opt);
    std::string csv = campaign.report.toCsv();
    EXPECT_NE(csv.find("total_specs,2"), std::string::npos);
    EXPECT_NE(csv.find("ok,1"), std::string::npos);
    EXPECT_NE(csv.find("worker_0_specs,2"), std::string::npos);
    EXPECT_NE(csv.find("error_assembly-error,1"), std::string::npos);
}

// ------------------------------------------------------ engine stats --

TEST(EngineStats, ResetStatsZeroesCountersWithoutTouchingPool)
{
    Engine engine;
    engine.session({});
    engine.session({});
    EXPECT_EQ(engine.machinesConstructed(), 1u);
    EXPECT_EQ(engine.poolHits(), 1u);

    engine.resetStats();
    EXPECT_EQ(engine.machinesConstructed(), 0u);
    EXPECT_EQ(engine.poolHits(), 0u);
    EXPECT_EQ(engine.poolSize(), 1u);

    // The pool itself is untouched: the next session is still a hit.
    engine.session({});
    EXPECT_EQ(engine.poolHits(), 1u);
    EXPECT_EQ(engine.machinesConstructed(), 0u);
}

TEST(SpecFile, PerLineCounterConfigs)
{
    // ROADMAP item: per-line -config files let one campaign mix event
    // sets. A good path loads; dedup must keep lines with different
    // configs apart.
    core::BenchmarkSpec defaults;
    std::string cfg =
        std::string(core::configDir()) + "/cfg_Skylake.txt";
    auto entries = parseSpecLines("-asm \"nop\" -config \"" + cfg +
                                      "\"\n"
                                      "nop\n",
                                  defaults);
    ASSERT_EQ(entries.size(), 2u);
    ASSERT_FALSE(entries[0].error.has_value());
    EXPECT_FALSE(entries[0].spec.config.empty());
    EXPECT_TRUE(entries[1].spec.config.empty());
    EXPECT_NE(specCanonicalKey(entries[0].spec),
              specCanonicalKey(entries[1].spec));

    // The configured events actually reach the results.
    Engine engine;
    CampaignOptions opt;
    auto campaign = engine.runCampaign(
        {entries[0].spec, entries[1].spec}, opt);
    ASSERT_TRUE(campaign.outcomes[0].ok());
    EXPECT_TRUE(campaign.outcomes[0]
                    .result()
                    .find("UOPS_ISSUED.ANY")
                    .has_value());
    ASSERT_TRUE(campaign.outcomes[1].ok());
    EXPECT_FALSE(campaign.outcomes[1]
                     .result()
                     .find("UOPS_ISSUED.ANY")
                     .has_value());
}

TEST(SpecFile, UnreadableConfigIsAPerLineError)
{
    core::BenchmarkSpec defaults;
    auto entries = parseSpecLines(
        "-asm \"nop\" -config /nonexistent/events.txt\n"
        "-asm \"nop\" -config\n",
        defaults);
    ASSERT_EQ(entries.size(), 2u);
    ASSERT_TRUE(entries[0].error.has_value());
    EXPECT_EQ(entries[0].error->code, RunError::Code::InvalidSpec);
    EXPECT_NE(entries[0].error->message.find("line 1"),
              std::string::npos);
    ASSERT_TRUE(entries[1].error.has_value());
    EXPECT_NE(entries[1].error->message.find("missing value"),
              std::string::npos);
}

// ------------------------------------------- fresh machines / setup --

TEST(Campaign, MachineSetupRunsOncePerWorker)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 3;
    std::atomic<unsigned> calls{0};
    opt.machineSetup = [&](core::Runner &runner) {
        EXPECT_EQ(runner.mode(), Mode::Kernel);
        ++calls;
    };
    engine.runCampaign(countingSpecs(9), opt);
    EXPECT_EQ(calls.load(), 3u);
}

TEST(Campaign, FreshMachineRunsSetupPerUniqueSpec)
{
    Engine engine;
    CampaignOptions opt;
    opt.jobs = 2;
    opt.freshMachinePerSpec = true;
    std::atomic<unsigned> calls{0};
    opt.machineSetup = [&](core::Runner &) { ++calls; };
    auto specs = countingSpecs(3);
    specs.push_back(specs.front()); // duplicate: deduped, no machine
    auto campaign = engine.runCampaign(specs, opt);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(campaign.report.cacheHits, 1u);
    // No pooled machines were used at all.
    EXPECT_EQ(engine.poolSize(), 0u);
}

TEST(Campaign, FreshMachineSpecsSeeTheSetUpMachine)
{
    // Specs planned against a prepared machine (here: an enlarged R14
    // area) only run if the setup hook reproduces that state on the
    // campaign's fresh machines -- exactly the profile builder's
    // contract.
    constexpr Addr kArea = 4 * 1024 * 1024;
    Addr probe_addr = 0;
    {
        sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
        core::Runner runner(machine, Mode::Kernel);
        ASSERT_TRUE(runner.reserveR14Area(kArea));
        probe_addr = runner.r14Area() + kArea - 64;
    }
    BenchmarkSpec spec;
    spec.asmCode =
        "mov RBX, [" + std::to_string(probe_addr) + "]";

    Engine engine;
    CampaignOptions opt;
    opt.freshMachinePerSpec = true;
    auto without = engine.runCampaign({spec}, opt);
    EXPECT_FALSE(without.outcomes[0].ok()); // page fault

    opt.machineSetup = [&](core::Runner &runner) {
        if (runner.r14AreaSize() < kArea) {
            ASSERT_TRUE(runner.reserveR14Area(kArea));
        }
    };
    auto with = engine.runCampaign({spec}, opt);
    EXPECT_TRUE(with.outcomes[0].ok());
}

TEST(Campaign, FreshMachineMakesJobsLayoutInvariant)
{
    // The pointer-chase timing of a spec depends on machine history
    // (caches, predictors); with freshMachinePerSpec every outcome is
    // a pure function of its spec, so any worker count produces
    // bit-identical results.
    std::vector<BenchmarkSpec> specs;
    for (unsigned i = 0; i < 6; ++i) {
        BenchmarkSpec spec;
        spec.asmInit = "mov [R14], R14";
        spec.asmCode = "mov R14, [R14]";
        spec.unrollCount = 10 + i;
        specs.push_back(spec);
    }
    auto run = [&](unsigned jobs) {
        Engine engine;
        CampaignOptions opt;
        opt.jobs = jobs;
        opt.freshMachinePerSpec = true;
        return engine.runCampaign(specs, opt);
    };
    auto one = run(1);
    auto three = run(3);
    ASSERT_EQ(one.outcomes.size(), three.outcomes.size());
    for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
        ASSERT_TRUE(one.outcomes[i].ok());
        ASSERT_TRUE(three.outcomes[i].ok());
        EXPECT_EQ(one.outcomes[i].result().toCsv(),
                  three.outcomes[i].result().toCsv())
            << i;
    }
}

TEST(EngineStats, LifetimeCountersSurviveClearPool)
{
    // Documented semantics: clearPool() drops machines but keeps the
    // monotonic lifetime counters; resetStats() is the explicit way
    // to open a fresh measurement window.
    Engine engine;
    engine.session({});
    engine.session({});
    engine.clearPool();
    EXPECT_EQ(engine.poolSize(), 0u);
    EXPECT_EQ(engine.machinesConstructed(), 1u);
    EXPECT_EQ(engine.poolHits(), 1u);

    engine.session({});
    EXPECT_EQ(engine.machinesConstructed(), 2u);
    EXPECT_EQ(engine.poolHits(), 1u);
}

// ----------------------------------------- shared program cache --

TEST(SharedProgramCache, FreshMachineCampaignDecodesOncePerUniqueSpec)
{
    Engine engine;
    std::vector<BenchmarkSpec> specs;
    for (int i = 0; i < 8; ++i) {
        BenchmarkSpec s;
        s.asmCode = "add RAX, " + std::to_string(i + 1);
        s.nMeasurements = 2;
        s.warmUpCount = 1;
        specs.push_back(s);
    }
    CampaignOptions opt;
    opt.jobs = 4;
    opt.freshMachinePerSpec = true;
    auto first = engine.runCampaign(specs, opt);
    EXPECT_EQ(first.report.okCount, specs.size());

    // 1 counter round x 2 unroll versions per unique spec: 16 decodes
    // total, even though every spec ran on a private fresh runner
    // (whose local cache started empty) and executed each program
    // several times (warm-up + measurements).
    auto stats = engine.programCache().stats();
    EXPECT_EQ(stats.misses, 16u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(engine.programCache().size(), 16u);

    // An identical second campaign decodes nothing: all 16 fetches
    // are shared-cache hits.
    auto second = engine.runCampaign(specs, opt);
    EXPECT_EQ(second.report.okCount, specs.size());
    stats = engine.programCache().stats();
    EXPECT_EQ(stats.misses, 16u);
    EXPECT_EQ(stats.hits, 16u);

    // The campaign report carries the snapshot.
    EXPECT_EQ(second.report.telemetry.program, stats);
    EXPECT_EQ(second.report.telemetry.programCacheSize, 16u);
}

TEST(SharedProgramCache, PooledReplicasShareDecodedPrograms)
{
    Engine engine;
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;

    SessionOptions opt;
    Session s0 = engine.session(opt);
    ASSERT_TRUE(s0.run(spec).ok());
    auto stats = engine.programCache().stats();
    EXPECT_EQ(stats.misses, 2u); // 2 unroll versions, decoded once
    EXPECT_EQ(stats.hits, 0u);

    // A second replica (private machine, identical layout) fetches
    // instead of decoding.
    opt.replica = 1;
    Session s1 = engine.session(opt);
    ASSERT_TRUE(s1.run(spec).ok());
    stats = engine.programCache().stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.hits, 2u);
    // Locally both runners report two misses (fetch or decode).
    EXPECT_EQ(s0.runner().programStats().misses, 2u);
    EXPECT_EQ(s1.runner().programStats().misses, 2u);
}

TEST(SharedProgramCache, ResetStatsKeepsCachedPrograms)
{
    Engine engine;
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;
    ASSERT_TRUE(engine.session({}).run(spec).ok());
    EXPECT_EQ(engine.programCache().stats().misses, 2u);

    engine.resetStats();
    EXPECT_EQ(engine.programCache().stats().misses, 0u);
    EXPECT_EQ(engine.programCache().stats().hits, 0u);
    EXPECT_EQ(engine.programCache().size(), 2u);

    // Programs survived: a fresh replica serves pure hits.
    SessionOptions opt;
    opt.replica = 7;
    ASSERT_TRUE(engine.session(opt).run(spec).ok());
    EXPECT_EQ(engine.programCache().stats().misses, 0u);
    EXPECT_EQ(engine.programCache().stats().hits, 2u);
}

TEST(SharedProgramCache, SessionOutlivesEngine)
{
    // The engine.hh contract: sessions keep working after the engine
    // (and thus the cache's owning reference) is gone. The runner's
    // shared_ptr copies keep the cache and its programs alive.
    BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;
    std::optional<Session> session;
    {
        Engine engine;
        session.emplace(engine.session({}));
        ASSERT_TRUE(session->run(spec).ok());
    }
    ASSERT_TRUE(session->run(spec).ok());
    BenchmarkSpec other = spec;
    other.asmCode = "add RBX, RBX";
    ASSERT_TRUE(session->run(other).ok());
}

TEST(SharedProgramCache, ConcurrentWorkersConvergeOnOneProgram)
{
    // 8 workers race 24 fresh-machine specs over 3 distinct bodies
    // (dedup off, so duplicates really execute). Concurrent lookups
    // and racing inserts on the same keys are exactly what the TSan
    // CI job needs to observe; the accounting invariant holds
    // regardless of interleaving: one lookup per local miss.
    Engine engine;
    std::vector<BenchmarkSpec> specs;
    for (int i = 0; i < 24; ++i) {
        BenchmarkSpec s;
        s.asmCode = "add RAX, " + std::to_string(i % 3);
        s.nMeasurements = 2;
        s.warmUpCount = 0;
        specs.push_back(s);
    }
    CampaignOptions opt;
    opt.jobs = 8;
    opt.dedup = false;
    opt.freshMachinePerSpec = true;
    auto result = engine.runCampaign(specs, opt);
    EXPECT_EQ(result.report.okCount, 24u);

    // 3 bodies x 2 unroll versions = 6 distinct programs, whoever
    // won each decode race; 24 specs x 2 fetches = 48 lookups.
    auto stats = engine.programCache().stats();
    EXPECT_EQ(engine.programCache().size(), 6u);
    EXPECT_EQ(stats.hits + stats.misses, 48u);
    EXPECT_GE(stats.misses, 6u);
}

} // namespace
} // namespace nb
