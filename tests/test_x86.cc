/**
 * @file
 * Unit and property tests for the x86 module: register parsing, the
 * assembler, and the encode/decode round-trip.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "x86/assembler.hh"
#include "x86/encoding.hh"

namespace nb::x86
{
namespace
{

TEST(Reg, ParseWidths)
{
    EXPECT_EQ(parseReg("RAX")->reg, Reg::RAX);
    EXPECT_EQ(parseReg("RAX")->widthBits, 64u);
    EXPECT_EQ(parseReg("eax")->reg, Reg::RAX);
    EXPECT_EQ(parseReg("eax")->widthBits, 32u);
    EXPECT_EQ(parseReg("ax")->widthBits, 16u);
    EXPECT_EQ(parseReg("al")->widthBits, 8u);
    EXPECT_EQ(parseReg("r14b")->reg, Reg::R14);
    EXPECT_EQ(parseReg("r14b")->widthBits, 8u);
    EXPECT_EQ(parseReg("xmm5")->reg, Reg::XMM5);
    EXPECT_EQ(parseReg("ymm5")->widthBits, 256u);
    EXPECT_FALSE(parseReg("rax2").has_value());
    EXPECT_FALSE(parseReg("xmm16").has_value());
}

TEST(Reg, NamesRoundTrip)
{
    for (unsigned i = 0; i < kNumGprs; ++i) {
        Reg r = static_cast<Reg>(i);
        for (unsigned w : {8u, 16u, 32u, 64u}) {
            auto parsed = parseReg(regName(r, w));
            ASSERT_TRUE(parsed.has_value()) << regName(r, w);
            EXPECT_EQ(parsed->reg, r);
            EXPECT_EQ(parsed->widthBits, w);
        }
    }
}

TEST(Assembler, PaperExample)
{
    // The exact §III-A invocation.
    auto code = assemble("mov R14, [R14]");
    ASSERT_EQ(code.size(), 1u);
    EXPECT_EQ(code[0].opcode, Opcode::MOV);
    ASSERT_EQ(code[0].operands.size(), 2u);
    EXPECT_EQ(code[0].operands[0].reg, Reg::R14);
    EXPECT_EQ(code[0].operands[1].kind, OperandKind::Memory);
    EXPECT_EQ(code[0].operands[1].mem.base, Reg::R14);
    EXPECT_TRUE(code[0].isLoad());
    EXPECT_FALSE(code[0].isStore());
}

TEST(Assembler, StoreForm)
{
    auto code = assemble("mov [R14], R14");
    ASSERT_EQ(code.size(), 1u);
    EXPECT_TRUE(code[0].isStore());
    EXPECT_FALSE(code[0].isLoad());
}

TEST(Assembler, MultipleStatements)
{
    auto code = assemble("nop; add RAX, 5\nxor rbx, rbx");
    ASSERT_EQ(code.size(), 3u);
    EXPECT_EQ(code[1].opcode, Opcode::ADD);
    EXPECT_EQ(code[1].operands[1].imm, 5);
}

TEST(Assembler, Comments)
{
    auto code = assemble("nop # trailing comment\n# full line\nnop");
    EXPECT_EQ(code.size(), 2u);
}

TEST(Assembler, ComplexMemoryOperand)
{
    auto code = assemble("mov RAX, qword ptr [R14+RSI*4+16]");
    ASSERT_EQ(code.size(), 1u);
    const auto &m = code[0].operands[1].mem;
    EXPECT_EQ(m.base, Reg::R14);
    EXPECT_EQ(m.index, Reg::RSI);
    EXPECT_EQ(m.scale, 4);
    EXPECT_EQ(m.disp, 16);
}

TEST(Assembler, NegativeDisplacement)
{
    auto code = assemble("mov RAX, [RBP-8]");
    EXPECT_EQ(code[0].operands[1].mem.disp, -8);
}

TEST(Assembler, AbsoluteAddress)
{
    auto code = assemble("mov RAX, [0x1000]");
    EXPECT_EQ(code[0].operands[1].mem.base, Reg::Invalid);
    EXPECT_EQ(code[0].operands[1].mem.disp, 0x1000);
}

TEST(Assembler, LabelsAndBranches)
{
    auto code = assemble("mov R15, 10; loop: dec R15; jnz loop; nop");
    ASSERT_EQ(code.size(), 4u);
    EXPECT_EQ(code[2].opcode, Opcode::JNZ);
    EXPECT_EQ(code[2].targetIdx, 1);
}

TEST(Assembler, ForwardLabel)
{
    auto code = assemble("jmp end; nop; end: nop");
    EXPECT_EQ(code[0].targetIdx, 2);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus RAX"), FatalError);
    EXPECT_THROW(assemble("mov RAX, [RBX"), FatalError);
    EXPECT_THROW(assemble("jnz nowhere"), FatalError);
    EXPECT_THROW(assemble("mov RAX, RBX, RCX, RDX, R8"), FatalError);
    EXPECT_THROW(assemble("l: nop; l: nop"), FatalError);
}

TEST(Assembler, PrivilegedAndMagicMnemonics)
{
    auto code = assemble("wbinvd; rdmsr; pfc_pause; pfc_resume; lfence");
    ASSERT_EQ(code.size(), 5u);
    EXPECT_TRUE(code[0].info().privileged);
    EXPECT_TRUE(code[1].info().privileged);
    EXPECT_EQ(code[2].opcode, Opcode::PFC_PAUSE);
    EXPECT_EQ(code[3].opcode, Opcode::PFC_RESUME);
    EXPECT_TRUE(code[4].info().dispatchFence);
}

TEST(Encoding, RoundTripSimple)
{
    auto code = assemble(
        "mov R14, [R14]; add RAX, 5; loop: dec R15; jnz loop");
    auto bytes = encode(code);
    auto decoded = decode(bytes);
    EXPECT_EQ(code, decoded);
}

TEST(Encoding, MagicBytesAreLiteral)
{
    auto code = assemble("nop; pfc_pause; nop; pfc_resume");
    auto bytes = encode(code);
    // The magic sequences appear verbatim in the byte stream (§III-I).
    auto find = [&](const std::array<std::uint8_t, 8> &magic) {
        return std::search(bytes.begin(), bytes.end(), magic.begin(),
                           magic.end()) != bytes.end();
    };
    EXPECT_TRUE(find(kMagicPause));
    EXPECT_TRUE(find(kMagicResume));
    EXPECT_EQ(decode(bytes), code);
}

TEST(Encoding, RejectsGarbage)
{
    std::vector<std::uint8_t> garbage = {'N', 'O', 'P', 'E', 1, 2, 3};
    EXPECT_THROW(decode(garbage), FatalError);
    EXPECT_THROW(decode(std::vector<std::uint8_t>{}), FatalError);
}

TEST(Encoding, RejectsTruncation)
{
    auto bytes = encode(assemble("add RAX, 5"));
    bytes.pop_back();
    EXPECT_THROW(decode(bytes), FatalError);
}

/** Property test: random instructions survive the byte round-trip. */
class EncodingRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EncodingRoundTrip, RandomInstructions)
{
    Rng rng(GetParam());
    std::vector<Instruction> code;
    for (int i = 0; i < 200; ++i) {
        Instruction insn;
        insn.opcode = static_cast<Opcode>(
            rng.nextBelow(static_cast<unsigned>(Opcode::NumOpcodes)));
        unsigned n_ops = static_cast<unsigned>(rng.nextBelow(3));
        for (unsigned k = 0; k < n_ops; ++k) {
            switch (rng.nextBelow(3)) {
              case 0:
                insn.operands.push_back(Operand::makeReg(
                    static_cast<Reg>(rng.nextBelow(32)),
                    rng.oneIn(2) ? 64 : 32));
                break;
              case 1:
                insn.operands.push_back(Operand::makeImm(
                    static_cast<std::int64_t>(rng.next())));
                break;
              default: {
                MemRef m;
                m.base = static_cast<Reg>(rng.nextBelow(16));
                m.disp = static_cast<std::int64_t>(rng.nextBelow(4096));
                insn.operands.push_back(Operand::makeMem(m));
              }
            }
        }
        if (rng.oneIn(8))
            insn.targetIdx = static_cast<std::int32_t>(rng.nextBelow(100));
        code.push_back(std::move(insn));
    }
    // Magic markers carry no operands; normalize before comparing.
    for (auto &insn : code) {
        if (insn.opcode == Opcode::PFC_PAUSE ||
            insn.opcode == Opcode::PFC_RESUME) {
            insn.operands.clear();
            insn.targetIdx = -1;
        }
    }
    EXPECT_EQ(decode(encode(code)), code);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(Instruction, FormSignatures)
{
    EXPECT_EQ(assemble("add RAX, RBX")[0].formSignature(), "ADD_R64_R64");
    EXPECT_EQ(assemble("add EAX, 1")[0].formSignature(), "ADD_R32_I");
    EXPECT_EQ(assemble("mov RAX, [R14]")[0].formSignature(),
              "MOV_R64_M64");
    EXPECT_EQ(assemble("addps XMM1, XMM2")[0].formSignature(),
              "ADDPS_X_X");
    EXPECT_EQ(assemble("vaddps YMM1, YMM2, YMM3")[0].formSignature(),
              "VADDPS_Y_Y_Y");
}

TEST(Instruction, ToStringRoundTrips)
{
    for (const char *text :
         {"mov R14, [R14]", "add RAX, 5", "lea RAX, [RBX+RCX*8+16]",
          "vaddps YMM1, YMM2, YMM3", "wbinvd", "setz AL"}) {
        auto code = assemble(text);
        auto re = assemble(code[0].toString());
        EXPECT_EQ(code[0], re[0]) << text << " vs " << code[0].toString();
    }
}

TEST(Instruction, LoadStoreClassification)
{
    EXPECT_TRUE(assemble("add RAX, [R14]")[0].isLoad());
    // Read-modify-write: both load and store.
    auto rmw = assemble("add [R14], RAX")[0];
    EXPECT_TRUE(rmw.isLoad());
    EXPECT_TRUE(rmw.isStore());
    // Pure store.
    auto st = assemble("mov [R14], RAX")[0];
    EXPECT_FALSE(st.isLoad());
    EXPECT_TRUE(st.isStore());
    // CMP with memory destination operand only reads.
    auto cmp = assemble("cmp [R14], RAX")[0];
    EXPECT_TRUE(cmp.isLoad());
    EXPECT_FALSE(cmp.isStore());
    // LEA does not access memory at all.
    auto lea = assemble("lea RAX, [R14+8]")[0];
    EXPECT_FALSE(lea.isLoad());
    EXPECT_FALSE(lea.isStore());
    // PUSH stores, POP loads.
    EXPECT_TRUE(assemble("push RAX")[0].isStore());
    EXPECT_TRUE(assemble("pop RAX")[0].isLoad());
}

} // namespace
} // namespace nb::x86
