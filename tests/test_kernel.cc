/**
 * @file
 * Tests for the simulated kernel allocator (§III-G, §IV-D).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "kernel/kalloc.hh"

namespace nb::kernel
{
namespace
{

TEST(Kmalloc, RespectsSizeCap)
{
    sim::Memory mem;
    Rng rng(1);
    KernelAllocator alloc(mem, &rng);
    EXPECT_NO_THROW(alloc.kmalloc(kKmallocMax));
    EXPECT_THROW(alloc.kmalloc(kKmallocMax + 1), PanicError);
    EXPECT_THROW(alloc.kmalloc(0), PanicError);
}

TEST(Kmalloc, ReturnsMappedContiguousMemory)
{
    sim::Memory mem;
    Rng rng(1);
    KernelAllocator alloc(mem, &rng);
    auto a = alloc.kmalloc(3 * kPageSize);
    EXPECT_EQ(a.size, 3 * kPageSize);
    for (Addr off = 0; off < a.size; off += kPageSize) {
        EXPECT_EQ(mem.translate(a.vaddr + off), a.paddr + off);
    }
}

TEST(Kmalloc, FreshBootCallsAreAdjacent)
{
    // §IV-D: "in many cases, subsequent calls to kmalloc yield adjacent
    // memory areas ... in particular ... if the system was rebooted
    // recently".
    sim::Memory mem;
    Rng rng(1);
    KernelAllocator alloc(mem, &rng, /*frag=*/0.0);
    auto a = alloc.kmalloc(kKmallocMax);
    auto b = alloc.kmalloc(kKmallocMax);
    EXPECT_EQ(b.paddr, a.paddr + a.size);
    EXPECT_EQ(b.vaddr, a.vaddr + a.size);
}

TEST(ContiguousAlloc, LargeAreaOnFreshBoot)
{
    sim::Memory mem;
    Rng rng(1);
    KernelAllocator alloc(mem, &rng, 0.0);
    // 64 MB: needs 16 adjacent kmalloc chunks.
    auto area = alloc.allocContiguous(64 * 1024 * 1024);
    ASSERT_TRUE(area.has_value());
    EXPECT_GE(area->size, 64u * 1024 * 1024);
    // Physically contiguous across the whole range.
    for (Addr off = 0; off < area->size; off += kPageSize)
        EXPECT_EQ(mem.translate(area->vaddr + off), area->paddr + off);
}

TEST(ContiguousAlloc, FailsUnderHeavyFragmentationAndProposesReboot)
{
    sim::Memory mem;
    Rng rng(1);
    KernelAllocator alloc(mem, &rng, /*frag=*/0.95);
    auto area = alloc.allocContiguous(64 * 1024 * 1024, 20);
    EXPECT_FALSE(area.has_value());

    // After a "reboot" the allocation succeeds again (§IV-D).
    alloc.reboot();
    alloc.setFragProbability(0.0);
    EXPECT_TRUE(alloc.allocContiguous(64 * 1024 * 1024).has_value());
}

TEST(ContiguousAlloc, SurvivesMildFragmentation)
{
    // The greedy restart logic rides out occasional non-adjacent
    // chunks.
    sim::Memory mem;
    Rng rng(99);
    KernelAllocator alloc(mem, &rng, 0.10);
    auto area = alloc.allocContiguous(32 * 1024 * 1024, 256);
    ASSERT_TRUE(area.has_value());
}

TEST(FragmentedAlloc, ShufflesPhysicalPages)
{
    sim::Memory mem;
    Rng rng(5);
    KernelAllocator alloc(mem, &rng);
    auto area = alloc.allocFragmented(64 * kPageSize);
    // Consecutive virtual pages are mapped, but not physically
    // sequential (ordinary user memory).
    unsigned sequential = 0;
    for (Addr i = 0; i + 1 < 64; ++i) {
        Addr p0 = mem.translate(area.vaddr + i * kPageSize);
        Addr p1 = mem.translate(area.vaddr + (i + 1) * kPageSize);
        sequential += p1 == p0 + kPageSize ? 1 : 0;
    }
    EXPECT_LT(sequential, 16u);
}

TEST(Memory, PageTableBasics)
{
    sim::PageTable pt;
    EXPECT_FALSE(pt.isMapped(0x5000));
    pt.mapPage(0x5000, 0x9000);
    EXPECT_TRUE(pt.isMapped(0x5123));
    EXPECT_EQ(pt.translate(0x5123), 0x9123u);
    EXPECT_THROW(pt.translate(0x6000), FatalError);
    pt.unmapPage(0x5000);
    EXPECT_THROW(pt.translate(0x5123), FatalError);
}

TEST(Memory, PhysReadWrite)
{
    sim::PhysMemory phys;
    EXPECT_EQ(phys.read(0x1234, 8), 0u); // untouched memory reads zero
    phys.write(0x1234, 0xDEADBEEFCAFE, 8);
    EXPECT_EQ(phys.read(0x1234, 8), 0xDEADBEEFCAFEu);
    EXPECT_EQ(phys.read(0x1234, 2), 0xCAFEu);
    // Cross-page write.
    phys.write(kPageSize - 4, 0x1122334455667788, 8);
    EXPECT_EQ(phys.read(kPageSize - 4, 8), 0x1122334455667788u);
}

} // namespace
} // namespace nb::kernel
