/**
 * @file
 * Tests for the static performance-bound analyzer
 * (analysis/bound.hh): hand-computed ground truth for each bound
 * class on Skylake, repeat-block scaling against a materialized
 * equivalent, serialization round-trips, the report memo, and the
 * simulator cross-check sweep -- every spec the characterizer,
 * profile, and cachetools planners emit must simulate at or above its
 * static lower bound on every supported microarchitecture.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/bound.hh"
#include "cachetools/cacheseq.hh"
#include "cachetools/dueling_scan.hh"
#include "core/config.hh"
#include "core/engine.hh"
#include "profile/build.hh"
#include "uarch/timing.hh"
#include "uarch/uarch.hh"
#include "uops/characterize.hh"
#include "x86/assembler.hh"

namespace nb
{
namespace
{

using analysis::Bottleneck;
using analysis::BoundReport;

const uarch::MicroArch &
skylake()
{
    return uarch::getMicroArch("Skylake");
}

core::BenchmarkSpec
asmSpec(const std::string &body)
{
    core::BenchmarkSpec spec;
    spec.asmCode = body;
    return spec;
}

BoundReport
bounds(const std::string &body)
{
    return analysis::analyzeBounds(skylake(), asmSpec(body));
}

/** One pooled machine set shared by the sweep tests. */
Engine &
sweepEngine()
{
    static Engine engine;
    return engine;
}

// ---------------------------------------------- names round-trip --

TEST(Bound, BottleneckNamesRoundTrip)
{
    for (Bottleneck b : {Bottleneck::Latency, Bottleneck::Ports,
                         Bottleneck::FrontEnd}) {
        auto back = analysis::bottleneckFromName(
            analysis::bottleneckName(b));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, b);
    }
    EXPECT_FALSE(analysis::bottleneckFromName("backend").has_value());
}

// ------------------------------------------- latency ground truth --

TEST(Bound, AddChainIsLatencyBound)
{
    // ADD RAX, RAX: a 1-cycle loop-carried chain through RAX. One ALU
    // uop on Skylake's {0,1,5,6} pool -> 0.25 cycles of port
    // pressure; one issue slot over width 4 -> 0.25 cycles front-end.
    BoundReport rep = bounds("add RAX, RAX");
    EXPECT_EQ(rep.uarch, "Skylake");
    EXPECT_EQ(rep.bottleneck, Bottleneck::Latency);
    EXPECT_DOUBLE_EQ(rep.latencyBound, 1.0);
    EXPECT_EQ(rep.latencyCycleLen, 1u);
    EXPECT_EQ(rep.latencyCycleWeight, 1);
    EXPECT_DOUBLE_EQ(rep.portBound, 0.25);
    EXPECT_DOUBLE_EQ(rep.frontEndBound, 0.25);
    EXPECT_DOUBLE_EQ(rep.bound(), 1.0);
    ASSERT_EQ(rep.criticalPath.size(), 1u);
    EXPECT_EQ(rep.criticalPath[0].index, 0);
    EXPECT_EQ(rep.criticalPath[0].latency, 1);
    ASSERT_EQ(rep.latencyCycleRegs.size(), 1u);
    EXPECT_EQ(rep.latencyCycleRegs[0], "RAX");
}

TEST(Bound, PointerChaseCostsTheL1Latency)
{
    // MOV RAX, [R14+RAX] decodes to a bare load uop (no core uop on
    // SnB descendants); the loop-carried address chain can never beat
    // the L1 hit latency.
    BoundReport rep = bounds("mov RAX, [R14+RAX]");
    EXPECT_EQ(rep.bottleneck, Bottleneck::Latency);
    EXPECT_DOUBLE_EQ(
        rep.latencyBound,
        static_cast<double>(skylake().cacheConfig.l1Latency));
    EXPECT_EQ(rep.latencyCycleLen, 1u);
    ASSERT_EQ(rep.criticalPath.size(), 1u);
    EXPECT_EQ(rep.criticalPath[0].index, 0);
}

TEST(Bound, MultiInstructionChainSumsEdgeWeights)
{
    // A two-step chain RAX -> RBX -> RAX: 2 cycles per copy, still
    // one copy per traversal.
    BoundReport rep = bounds("add RBX, RAX; mov RAX, RBX");
    EXPECT_EQ(rep.bottleneck, Bottleneck::Latency);
    EXPECT_DOUBLE_EQ(rep.latencyBound, 2.0);
    EXPECT_EQ(rep.latencyCycleLen, 1u);
    EXPECT_EQ(rep.latencyCycleWeight, 2);
    EXPECT_EQ(rep.criticalPath.size(), 2u);
}

TEST(Bound, ZeroIdiomBreaksTheChain)
{
    // XOR RAX, RAX is dependency-breaking: no loop-carried cycle
    // survives, so the front-end floor is the binding bound.
    BoundReport rep = bounds("xor RAX, RAX; add RAX, RAX");
    EXPECT_DOUBLE_EQ(rep.latencyBound, 0.0);
    EXPECT_EQ(rep.latencyCycleLen, 0u);
    EXPECT_TRUE(rep.criticalPath.empty());
    EXPECT_TRUE(rep.latencyCycleRegs.empty());
}

// --------------------------------------------- ports ground truth --

TEST(Bound, LeaMixIsPortBound)
{
    // Three independent LEAs confined to Skylake's {1,5} LEA pool:
    // 3 uops / 2 ports = 1.5 cycles per copy, above the 0.75-cycle
    // front-end floor. LEA address registers carry no timing edge, so
    // there is no latency cycle at all.
    BoundReport rep = bounds(
        "lea RAX, [RBX]; lea RCX, [RBX]; lea RDX, [RBX]");
    EXPECT_EQ(rep.bottleneck, Bottleneck::Ports);
    EXPECT_DOUBLE_EQ(rep.portBound, 1.5);
    EXPECT_DOUBLE_EQ(rep.frontEndBound, 0.75);
    EXPECT_DOUBLE_EQ(rep.latencyBound, 0.0);
    ASSERT_EQ(rep.ports.size(), skylake().ports().numPorts);
    EXPECT_DOUBLE_EQ(rep.ports[1].uops, 1.5);
    EXPECT_DOUBLE_EQ(rep.ports[5].uops, 1.5);
    EXPECT_DOUBLE_EQ(rep.ports[1].util, 1.0);
    EXPECT_DOUBLE_EQ(rep.ports[5].util, 1.0);
    EXPECT_DOUBLE_EQ(rep.ports[0].uops, 0.0);
}

TEST(Bound, BlockingUopsWeighTheirBlockCycles)
{
    // 64-bit DIV occupies its port for 1 + blockCycles; the port
    // bound must account for the occupancy, not just the uop count.
    std::vector<x86::Instruction> div = x86::assemble("div RBX");
    ASSERT_EQ(div.size(), 1u);
    uarch::CoreTiming t =
        uarch::coreTiming(skylake().family, div[0]);
    ASSERT_GT(t.blockCycles, 0u);
    BoundReport rep = bounds("div RBX");
    EXPECT_GE(rep.portBound, 1.0 + t.blockCycles);
}

// ----------------------------------------- front-end ground truth --

TEST(Bound, WideIndependentMixIsFrontEndBound)
{
    // Four independent ADDs (1-cycle chains, 4 uops on 4 ALU ports =
    // 1.0 cycle pressure) plus four NOPs (issue slots only): 8 issue
    // slots / width 4 = 2 cycles per copy at the front end.
    BoundReport rep = bounds(
        "add RAX, 1; add RBX, 1; add RCX, 1; add RDX, 1; "
        "nop; nop; nop; nop");
    EXPECT_EQ(rep.bottleneck, Bottleneck::FrontEnd);
    EXPECT_DOUBLE_EQ(rep.frontEndBound, 2.0);
    EXPECT_DOUBLE_EQ(rep.uopsPerCopy, 8.0);
    EXPECT_EQ(rep.issueWidth, 4u);
    EXPECT_DOUBLE_EQ(rep.portBound, 1.0);
    EXPECT_DOUBLE_EQ(rep.latencyBound, 1.0);
    EXPECT_DOUBLE_EQ(rep.bound(), 2.0);
}

// ------------------------------------------- repeat-block scaling --

TEST(Bound, RepeatBlocksNeverMaterialize)
{
    // The per-copy bounds are a property of the body pattern; the
    // unroll count scales trip counts, not the analysis.
    core::BenchmarkSpec one = asmSpec("add RAX, RAX; add RBX, RBX");
    one.unrollCount = 1;
    core::BenchmarkSpec many = one;
    many.unrollCount = 1u << 20;
    EXPECT_EQ(analysis::analyzeBounds(skylake(), one),
              analysis::analyzeBounds(skylake(), many));
}

TEST(Bound, MaterializedCopiesScaleThePatternBounds)
{
    // Hand-materializing 7 copies of the pattern must produce exactly
    // 7x the per-copy throughput bounds and a 7x-weight latency cycle
    // (the chain threads all 7 copies before re-entering).
    std::string body = "add RAX, RAX";
    std::string copies7;
    for (int i = 0; i < 7; ++i)
        copies7 += (i ? "; " : "") + body;
    BoundReport per = bounds(body);
    BoundReport mat = bounds(copies7);
    EXPECT_DOUBLE_EQ(mat.portBound, 7 * per.portBound);
    EXPECT_DOUBLE_EQ(mat.frontEndBound, 7 * per.frontEndBound);
    EXPECT_DOUBLE_EQ(mat.latencyBound, 7 * per.latencyBound);
    EXPECT_EQ(mat.latencyCycleLen, 1u);
    EXPECT_EQ(mat.latencyCycleWeight, 7);
    EXPECT_EQ(mat.criticalPath.size(), 7u);
}

// ----------------------------------------------- total-run bounds --

TEST(Bound, TotalCycleBoundAnchorsTheFirstTraversal)
{
    BoundReport rep = bounds("add RAX, RAX");
    // 100 contiguous copies of a 1-cycle chain: 99 guaranteed cycles
    // (the first traversal may overlap stale scheduler state).
    EXPECT_DOUBLE_EQ(analysis::totalCycleBound(rep, 100), 99.0);
    // Throughput terms take over when the chain is short.
    BoundReport lea = bounds(
        "lea RAX, [RBX]; lea RCX, [RBX]; lea RDX, [RBX]");
    EXPECT_DOUBLE_EQ(analysis::totalCycleBound(lea, 100), 150.0);
}

TEST(Bound, MeasurementBoundSpansLoopsForRegisterChains)
{
    BoundReport rep = bounds("add RAX, RAX");
    ASSERT_EQ(rep.latencyCycleRegs.size(), 1u);
    EXPECT_EQ(rep.latencyCycleRegs[0], "RAX");
    // A register-carried chain survives the loop's own R15/RFLAGS
    // updates: 10 loops x 10 copies = 99 guaranteed cycles.
    EXPECT_DOUBLE_EQ(analysis::measurementCycleBound(rep, 10, 10),
                     99.0);
}

TEST(Bound, MeasurementBoundRestartsFlagsChainsAtLoopBounds)
{
    // ADC RAX, 0 chains through RAX *and* RFLAGS; the max-mean cycle
    // may be reported on either register. A flags-carried cycle is
    // rewritten by the loop decrement, so only one unroll group is
    // guaranteed serial -- unless the reported ring avoids RFLAGS.
    BoundReport rep = bounds("adc RAX, 0");
    EXPECT_EQ(rep.bottleneck, Bottleneck::Latency);
    ASSERT_EQ(rep.latencyCycleLen, 1u);
    bool flags_carried = !rep.latencyCycleRegs.empty() &&
                         rep.latencyCycleRegs[0] == "RFLAGS";
    double expect = flags_carried
                        ? 9 * rep.latencyCycleWeight
                        : 99 * rep.latencyCycleWeight;
    EXPECT_DOUBLE_EQ(analysis::measurementCycleBound(rep, 10, 10),
                     expect);
}

// ------------------------------------------------- serialization --

TEST(Bound, JsonRoundTrips)
{
    for (const std::string &body :
         {std::string("add RAX, RAX"),
          std::string("lea RAX, [RBX]; lea RCX, [RBX]"),
          std::string("mov RAX, [R14+RAX]; nop")}) {
        BoundReport rep = bounds(body);
        EXPECT_EQ(BoundReport::fromJson(rep.toJson()), rep) << body;
    }
}

TEST(Bound, CsvRoundTrips)
{
    for (const std::string &body :
         {std::string("add RAX, RAX"),
          std::string("lea RAX, [RBX]; lea RCX, [RBX]"),
          std::string("mov RAX, [R14+RAX]; nop")}) {
        BoundReport rep = bounds(body);
        EXPECT_EQ(BoundReport::fromCsv(rep.toCsv()), rep) << body;
    }
}

TEST(Bound, FormatMentionsTheBottleneckAndPath)
{
    BoundReport rep = bounds("add RAX, RAX");
    std::string text = rep.format();
    EXPECT_NE(text.find("bottleneck: latency"), std::string::npos);
    EXPECT_NE(text.find("body[0]"), std::string::npos);
    EXPECT_NE(text.find("carried through: RAX"), std::string::npos);
}

// ---------------------------------------------------------- memo --

TEST(BoundCache, SecondAnalysisIsAHit)
{
    core::BenchmarkSpec spec = asmSpec("add RAX, 424243");
    CacheStats before = analysis::boundCacheCounters();
    BoundReport first = analysis::analyzeBoundsCached(skylake(), spec);
    CacheStats mid = analysis::boundCacheCounters();
    EXPECT_EQ(mid.misses, before.misses + 1);
    BoundReport second =
        analysis::analyzeBoundsCached(skylake(), spec);
    CacheStats after = analysis::boundCacheCounters();
    EXPECT_EQ(after.hits, mid.hits + 1);
    EXPECT_EQ(after.misses, mid.misses);
    EXPECT_EQ(first, second);
}

// -------------------------------- simulator cross-check sweep --

/**
 * Run @p spec once (single measurement, no warm-up) on @p session and
 * assert the whole-run simulated cycle count respects the static
 * lower bound for one execution of the generated measurement code.
 * Per-spec RunErrors are tolerated the way Characterizer::decode
 * tolerates them (e.g. RDPMC itself cannot run on Zen), and a run
 * with zero readout items never executes the body at all -- both
 * skip the cross-check instead of failing it.
 */
void
checkSpecAgainstBound(Session &session, const uarch::MicroArch &ua,
                      const core::BenchmarkSpec &spec,
                      const std::string &what)
{
    core::BenchmarkSpec s = spec;
    s.nMeasurements = 1;
    s.warmUpCount = 0;
    RunOutcome outcome = session.run(s);
    if (!outcome.ok())
        return;
    if (outcome.result().lines.empty())
        return;
    BoundReport rep = analysis::analyzeBoundsCached(ua, s);
    double lb = analysis::measurementCycleBound(
        rep, s.unrollCount, std::max<std::uint64_t>(1, s.loopCount));
    auto cycles =
        static_cast<double>(session.runner().lastRunCycles());
    EXPECT_GE(cycles, lb - 1e-6)
        << what << " (" << analysis::bottleneckName(rep.bottleneck)
        << "-bound):\n"
        << rep.format();
}

TEST(BoundSweep, CharacterizerPlansRespectBoundsOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        SessionOptions opt;
        opt.uarch = name;
        Session session = sweepEngine().session(opt);
        uops::Characterizer tool(session);
        uops::CharacterizationPlan plan = tool.plan();
        const uarch::MicroArch &ua = uarch::getMicroArch(name);
        std::set<std::string> seen;
        for (const uops::PlannedSpec &ps : plan.specs) {
            if (!seen.insert(core::specCanonicalKey(ps.spec)).second)
                continue;
            checkSpecAgainstBound(session, ua, ps.spec,
                                  name + " variant " +
                                      std::to_string(ps.variant));
            if (HasFatalFailure())
                return;
        }
    }
}

TEST(BoundSweep, ProfilePlansRespectBoundsOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        profile::ProfileOptions popt;
        popt.session.uarch = name;
        popt.maxAssoc = 4;
        popt.policySequences = 2;
        popt.tlbMaxPages = 64;
        popt.duelingScan = false;
        profile::ProfilePlan plan = profile::planMachineProfile(popt);
        SessionOptions sopt;
        sopt.uarch = name;
        // The shipped counter config, so sections that rely on
        // programmable counters (all of them on fixed-counter-less
        // Zen) measure something and actually execute.
        sopt.config = core::CounterConfig::forMicroArch(name);
        Session session = sweepEngine().session(sopt);
        profile::prepareProfileMachine(session.runner(), plan);
        const uarch::MicroArch &ua = uarch::getMicroArch(name);
        std::set<std::string> seen;
        for (std::size_t i = 0; i < plan.specs.size(); ++i) {
            if (!seen.insert(core::specCanonicalKey(plan.specs[i]))
                     .second)
                continue;
            checkSpecAgainstBound(session, ua, plan.specs[i],
                                  name + " profile spec " +
                                      std::to_string(i));
            if (HasFatalFailure())
                return;
        }
    }
}

TEST(BoundSweep, CacheSeqPlansRespectBoundsOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        SessionOptions sopt;
        sopt.uarch = name;
        Session session = sweepEngine().session(sopt);
        cachetools::CacheSeqOptions copt;
        copt.level = cachetools::CacheLevel::L1;
        copt.set = 3;
        copt.disablePrefetchers = false;
        cachetools::CacheSeq seq(session, copt);
        std::vector<cachetools::SeqAccess> accesses;
        for (int block : {0, 1, 2, 3, 0, 1, 2, 3})
            accesses.push_back({block});
        core::BenchmarkSpec spec = seq.planSeq(accesses);
        checkSpecAgainstBound(session, uarch::getMicroArch(name),
                              spec, name + " cacheSeq plan");
        if (HasFatalFailure())
            return;
    }
}

TEST(BoundSweep, DuelingPlanRespectsBounds)
{
    SessionOptions sopt;
    sopt.uarch = "IvyBridge";
    Session session = sweepEngine().session(sopt);
    const auto &duel =
        uarch::getMicroArch("IvyBridge").cacheConfig.l3Dueling;
    ASSERT_FALSE(duel.policyA.empty());
    cachetools::DuelingScanner scanner(session, duel.policyA,
                                       duel.policyB);
    cachetools::DuelingPlanOptions opt;
    opt.setLo = 512;
    opt.setHi = 515;
    opt.stride = 16;
    opt.trainReplays = 2;
    Addr need = scanner.planAreaSize(opt);
    if (need > session.runner().r14AreaSize()) {
        ASSERT_TRUE(session.runner().reserveR14Area(need));
    }
    cachetools::DuelingPlan plan = scanner.plan(opt);
    ASSERT_FALSE(plan.specs.empty());
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        checkSpecAgainstBound(session,
                              uarch::getMicroArch("IvyBridge"),
                              plan.specs[i],
                              "dueling probe " + std::to_string(i));
        if (HasFatalFailure())
            return;
    }
}

} // namespace
} // namespace nb
