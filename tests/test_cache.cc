/**
 * @file
 * Tests for the cache structures: geometry, the hierarchy (inclusive L3
 * with back-invalidation), slice hashing, prefetchers, uncore counters,
 * permutation policies, and set dueling.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/permutation.hh"
#include "cachetools/policy_sim.hh"
#include "common/rng.hh"
#include "uarch/uarch.hh"

namespace nb::cache
{
namespace
{

Rng &
testRng()
{
    static Rng rng(31337);
    return rng;
}

CacheConfig
smallCache(const std::string &policy = "LRU", Addr size = 4096,
           unsigned assoc = 4)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    cfg.policyFactory = [=](unsigned) {
        return makePolicy(policy, assoc, &testRng());
    };
    return cfg;
}

TEST(Cache, Geometry)
{
    Cache c(smallCache()); // 4 KB, 4-way, 64 B lines -> 16 sets
    EXPECT_EQ(c.numSets(), 16u);
    EXPECT_EQ(c.setIndex(0x0), 0u);
    EXPECT_EQ(c.setIndex(0x40), 1u);
    EXPECT_EQ(c.setIndex(0x400), 0u); // wraps at 16 sets
    EXPECT_EQ(c.tagOf(0x400), 1u);
    EXPECT_EQ(c.addrOf(c.setIndex(0x7C0), c.tagOf(0x7C0)), 0x7C0u);
}

TEST(Cache, HitAfterFill)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x1000));
    auto r = c.access(0x1000, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentOffsets)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.access(0x103F, false).hit);
    EXPECT_FALSE(c.probe(0x1040));
}

TEST(Cache, EvictionReportsVictim)
{
    Cache c(smallCache("LRU"));
    // Fill set 0 (stride = 16 sets * 64 B).
    for (Addr i = 0; i < 4; ++i)
        c.access(i * 0x400, false);
    auto r = c.access(4 * 0x400, false);
    ASSERT_TRUE(r.evicted.has_value());
    EXPECT_EQ(*r.evicted, 0u); // LRU victim is the first line
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionIsWriteback)
{
    Cache c(smallCache("LRU"));
    c.access(0x0, true); // dirty
    for (Addr i = 1; i <= 4; ++i)
        c.access(i * 0x400, false);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache c(smallCache());
    c.access(0x1000, false);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x2000, false);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.setOccupancy(c.setIndex(0x2000)), 0u);
}

TEST(Cache, OccupancyTracking)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.setFull(0));
    for (Addr i = 0; i < 4; ++i)
        c.access(i * 0x400, false);
    EXPECT_TRUE(c.setFull(0));
    EXPECT_EQ(c.setOccupancy(0), 4u);
}

// --------------------------------------------------------- hierarchy --

HierarchyConfig
skylakeConfig()
{
    return uarch::getMicroArch("Skylake").cacheConfig;
}

TEST(Hierarchy, MissFillsAllLevels)
{
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng);
    h.setPrefetcherControl(pf::kDisableAll);
    auto r = h.access(0x100000, AccessType::Load);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_TRUE(h.l1().probe(0x100000));
    EXPECT_TRUE(h.l2().probe(0x100000));
    EXPECT_TRUE(h.l3Slice(h.sliceOf(0x100000)).probe(0x100000));
    EXPECT_EQ(h.access(0x100000, AccessType::Load).level, HitLevel::L1);
}

TEST(Hierarchy, LatenciesFollowLevels)
{
    Rng rng(1);
    auto cfg = skylakeConfig();
    Hierarchy h(cfg, &rng);
    h.setPrefetcherControl(pf::kDisableAll);
    EXPECT_EQ(h.access(0x40000, AccessType::Load).latency,
              cfg.memLatency);
    EXPECT_EQ(h.access(0x40000, AccessType::Load).latency,
              cfg.l1Latency);
    h.l1().invalidate(0x40000);
    EXPECT_EQ(h.access(0x40000, AccessType::Load).latency,
              cfg.l2Latency);
    h.l1().invalidate(0x40000);
    h.l2().invalidate(0x40000);
    EXPECT_EQ(h.access(0x40000, AccessType::Load).latency,
              cfg.l3Latency);
}

TEST(Hierarchy, InclusiveBackInvalidation)
{
    Rng rng(1);
    auto cfg = skylakeConfig();
    Hierarchy h(cfg, &rng);
    h.setPrefetcherControl(pf::kDisableAll);

    // Fill one L3 set (slice of `base`) beyond its associativity and
    // check that L3 evictions remove lines from L1/L2 as well.
    Addr stride = static_cast<Addr>(h.l3Slice(0).numSets()) *
                  kCacheLineSize;
    unsigned slice0 = h.sliceOf(0);
    std::vector<Addr> lines;
    Addr a = 0;
    while (lines.size() < cfg.l3.assoc + 4) {
        if (h.sliceOf(a) == slice0)
            lines.push_back(a);
        a += stride;
    }
    for (Addr line : lines)
        h.access(line, AccessType::Load);
    // At least some early lines were evicted from the L3...
    unsigned in_l3 = 0;
    for (Addr line : lines)
        in_l3 += h.l3Slice(slice0).probe(line) ? 1 : 0;
    EXPECT_LE(in_l3, cfg.l3.assoc);
    // ...and none of the evicted ones may remain in L1 or L2.
    for (Addr line : lines) {
        if (!h.l3Slice(slice0).probe(line)) {
            EXPECT_FALSE(h.l1().probe(line));
            EXPECT_FALSE(h.l2().probe(line));
        }
    }
}

TEST(Hierarchy, WbinvdFlushesEverything)
{
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng);
    h.access(0x5000, AccessType::Store);
    h.wbinvd();
    EXPECT_FALSE(h.l1().probe(0x5000));
    EXPECT_FALSE(h.l2().probe(0x5000));
    EXPECT_EQ(h.access(0x5000, AccessType::Load).level,
              HitLevel::Memory);
}

TEST(Hierarchy, ClflushInvalidatesOneLine)
{
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng);
    h.setPrefetcherControl(pf::kDisableAll);
    h.access(0x6000, AccessType::Load);
    h.access(0x9000, AccessType::Load);
    h.clflush(0x6000);
    EXPECT_EQ(h.access(0x6000, AccessType::Load).level,
              HitLevel::Memory);
    EXPECT_EQ(h.access(0x9000, AccessType::Load).level, HitLevel::L1);
}

TEST(Hierarchy, SliceHashIsBalanced)
{
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng); // 2 slices
    std::vector<unsigned> counts(h.numSlices(), 0);
    for (Addr a = 0; a < (1 << 22); a += kCacheLineSize)
        ++counts[h.sliceOf(a)];
    double total = (1 << 22) / kCacheLineSize;
    for (unsigned c : counts)
        EXPECT_NEAR(c, total / h.numSlices(), total * 0.02);
}

TEST(Hierarchy, SliceHashUsesHighBits)
{
    // §VI-D: the slice is NOT simply determined by low set-index bits.
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng);
    bool high_bit_changes_slice = false;
    for (Addr a = 0; a < 64 && !high_bit_changes_slice; ++a) {
        Addr base = a * 0x20000;
        high_bit_changes_slice =
            h.sliceOf(base) != h.sliceOf(base ^ (1ULL << 30));
    }
    EXPECT_TRUE(high_bit_changes_slice);
}

TEST(Hierarchy, UncoreCountersPerSlice)
{
    Rng rng(1);
    Hierarchy h(skylakeConfig(), &rng);
    h.setPrefetcherControl(pf::kDisableAll);
    Addr addr = 0x123440;
    unsigned slice = h.sliceOf(addr);
    auto lookups_before = h.cboxStats(slice).lookups;
    h.access(addr, AccessType::Load); // miss -> reaches L3
    EXPECT_EQ(h.cboxStats(slice).lookups, lookups_before + 1);
    EXPECT_EQ(h.cboxStats(slice).misses, 1u);
    // L1 hit: no uncore traffic.
    h.access(addr, AccessType::Load);
    EXPECT_EQ(h.cboxStats(slice).lookups, lookups_before + 1);
}

TEST(Hierarchy, StreamerPrefetchesNextLine)
{
    Rng rng(1);
    auto cfg = skylakeConfig();
    cfg.prefetcherControlInit = 0; // all prefetchers on
    Hierarchy h(cfg, &rng);
    // A 3-line ascending stream within one page triggers the streamer.
    h.access(0x10000, AccessType::Load);
    h.access(0x10040, AccessType::Load);
    h.access(0x10080, AccessType::Load);
    EXPECT_TRUE(h.l2().probe(0x100C0));
}

TEST(Hierarchy, PrefetcherMsrDisables)
{
    Rng rng(1);
    auto cfg = skylakeConfig();
    cfg.prefetcherControlInit = pf::kDisableAll;
    Hierarchy h(cfg, &rng);
    h.access(0x10000, AccessType::Load);
    h.access(0x10040, AccessType::Load);
    h.access(0x10080, AccessType::Load);
    EXPECT_FALSE(h.l2().probe(0x100C0));
    EXPECT_FALSE(h.l2().probe(0x10100));
}

TEST(Hierarchy, AdjacentLinePrefetcher)
{
    Rng rng(1);
    auto cfg = skylakeConfig();
    cfg.prefetcherControlInit =
        pf::kDisableL2Streamer | pf::kDisableDcu | pf::kDisableDcuIp;
    Hierarchy h(cfg, &rng);
    h.access(0x10040, AccessType::Load);
    // Buddy of 0x10040 within the 128-byte pair is 0x10000.
    EXPECT_TRUE(h.l2().probe(0x10000));
}

TEST(Hierarchy, AmdIgnoresPrefetcherWrites)
{
    // §VI-D: the paper could not disable prefetching on AMD.
    Rng rng(1);
    Hierarchy h(uarch::getMicroArch("Zen").cacheConfig, &rng);
    EXPECT_FALSE(h.prefetcherDisableSupported());
    h.setPrefetcherControl(pf::kDisableAll);
    EXPECT_EQ(h.prefetcherControl(), 0u);
}

// ------------------------------------------------------ permutation --

TEST(Permutation, LruSpecMatchesLruPolicy)
{
    Rng rng(1);
    auto spec = PermutationSpec::lru(4);
    ASSERT_TRUE(spec.isValid());
    cachetools::PolicySim as_perm(
        std::make_unique<PermutationPolicy>(4, spec));
    cachetools::PolicySim real(makePolicy("LRU", 4, &rng));
    Rng seq_rng(2);
    for (int i = 0; i < 2000; ++i) {
        int b = static_cast<int>(seq_rng.nextBelow(7));
        EXPECT_EQ(as_perm.access(b), real.access(b)) << "step " << i;
    }
}

TEST(Permutation, FifoSpecMatchesFifoPolicy)
{
    Rng rng(1);
    auto spec = PermutationSpec::fifo(4);
    cachetools::PolicySim as_perm(
        std::make_unique<PermutationPolicy>(4, spec));
    cachetools::PolicySim real(makePolicy("FIFO", 4, &rng));
    Rng seq_rng(3);
    for (int i = 0; i < 2000; ++i) {
        int b = static_cast<int>(seq_rng.nextBelow(7));
        EXPECT_EQ(as_perm.access(b), real.access(b)) << "step " << i;
    }
}

TEST(Permutation, InvalidSpecRejected)
{
    PermutationSpec spec;
    spec.hitPerms = {{0, 1}, {1, 1}}; // second entry not a permutation
    spec.missPerm = {0, 1};
    EXPECT_FALSE(spec.isValid());
}

// ---------------------------------------------------------- dueling --

TEST(Dueling, RoleLookup)
{
    DuelingConfig cfg;
    cfg.leaders = {
        {-1, 512, 575, DuelRole::LeaderA},
        {0, 768, 831, DuelRole::LeaderB},
    };
    EXPECT_EQ(cfg.role(3, 520), DuelRole::LeaderA);
    EXPECT_EQ(cfg.role(0, 800), DuelRole::LeaderB);
    EXPECT_EQ(cfg.role(1, 800), DuelRole::Follower);
    EXPECT_EQ(cfg.role(0, 100), DuelRole::Follower);
}

TEST(Dueling, PselSaturates)
{
    DuelState duel(10);
    EXPECT_EQ(duel.psel(), 512u);
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(DuelRole::LeaderA);
    EXPECT_EQ(duel.psel(), 1023u);
    EXPECT_EQ(duel.winner(), DuelRole::LeaderB);
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(DuelRole::LeaderB);
    EXPECT_EQ(duel.psel(), 0u);
    EXPECT_EQ(duel.winner(), DuelRole::LeaderA);
}

TEST(Dueling, FollowerSwitchesInsertionPolicy)
{
    Rng rng(1);
    DuelState duel(10);
    auto spec_a = QlruSpec::parse("QLRU_H11_M1_R1_U2").value();
    auto spec_b = QlruSpec::parse("QLRU_H11_M3_R1_U2").value();
    AdaptiveQlruPolicy follower(4, spec_a, spec_b, DuelRole::Follower,
                                &duel, &rng);
    std::vector<bool> valid(4, true);
    follower.reset();

    // With A winning, insertions use age 1; with B winning, age 3.
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(DuelRole::LeaderB); // A wins
    follower.onInsert(0, valid);
    EXPECT_EQ(follower.debugState()[0], '1');
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(DuelRole::LeaderA); // B wins
    follower.onInsert(1, valid);
    EXPECT_EQ(follower.debugState()[1], '3');
}

TEST(Dueling, LeaderIgnoresPsel)
{
    Rng rng(1);
    DuelState duel(10);
    auto spec_a = QlruSpec::parse("QLRU_H11_M1_R1_U2").value();
    auto spec_b = QlruSpec::parse("QLRU_H11_M3_R1_U2").value();
    AdaptiveQlruPolicy leader(4, spec_a, spec_b, DuelRole::LeaderA,
                              &duel, &rng);
    std::vector<bool> valid(4, true);
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(DuelRole::LeaderA); // B wins the duel
    leader.onInsert(0, valid);
    EXPECT_EQ(leader.debugState()[0], '1'); // still uses spec A
}

TEST(Dueling, LeaderMissesMoveCounter)
{
    Rng rng(1);
    DuelState duel(10);
    auto spec = QlruSpec::parse("QLRU_H11_M1_R1_U2").value();
    AdaptiveQlruPolicy leader(4, spec, spec, DuelRole::LeaderA, &duel,
                              &rng);
    std::vector<bool> valid(4, true);
    unsigned before = duel.psel();
    leader.onInsert(0, valid);
    EXPECT_EQ(duel.psel(), before + 1);
}

// -------------------------------------------- Table I configurations --

class TableOneGeometry : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TableOneGeometry, ConstructsAndServesAccesses)
{
    const auto &ua = uarch::getMicroArch(GetParam());
    Rng rng(1);
    Hierarchy h(ua.cacheConfig, &rng);
    h.setPrefetcherControl(pf::kDisableAll);
    // 2048 sets per slice on every sliced part.
    if (ua.cacheConfig.l3Slices > 1) {
        EXPECT_EQ(h.l3Slice(0).numSets(), 2048u);
    }
    // L1 geometry per Table I.
    EXPECT_EQ(h.l1().numSets(), 64u);
    EXPECT_EQ(h.l1().assoc(), ua.cacheConfig.l1.assoc);
    // Basic access sanity.
    auto r = h.access(0x77777740, AccessType::Load);
    EXPECT_EQ(r.level, HitLevel::Memory);
    EXPECT_EQ(h.access(0x77777740, AccessType::Load).level,
              HitLevel::L1);
}

INSTANTIATE_TEST_SUITE_P(
    AllTableOneCpus, TableOneGeometry,
    ::testing::ValuesIn(uarch::tableOneMicroArchNames()));

} // namespace
} // namespace nb::cache
