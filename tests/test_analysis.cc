/**
 * @file
 * Tests for the spec static analyzer (analysis/analysis.hh): each
 * rule's firing and non-firing cases, diagnostic serialization
 * round-trips, the lintLevel gate in Session::run, the report memo,
 * and the planner self-verification sweep -- every spec the
 * characterizer, profile, and cachetools planners emit must lint
 * clean on every supported microarchitecture.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.hh"
#include "cachetools/cacheseq.hh"
#include "cachetools/dueling_scan.hh"
#include "core/engine.hh"
#include "profile/build.hh"
#include "uarch/uarch.hh"
#include "uops/characterize.hh"
#include "x86/assembler.hh"

namespace nb
{
namespace
{

using analysis::Context;
using analysis::Report;
using analysis::Severity;

const uarch::MicroArch &
skylake()
{
    return uarch::getMicroArch("Skylake");
}

core::BenchmarkSpec
asmSpec(const std::string &body, const std::string &init = "")
{
    core::BenchmarkSpec spec;
    spec.asmCode = body;
    spec.asmInit = init;
    return spec;
}

Report
analyze(const core::BenchmarkSpec &spec, const Context &ctx = {})
{
    return analysis::analyzeSpec(skylake(), spec, ctx);
}

/** One pooled machine set shared by the sweep tests. */
Engine &
sweepEngine()
{
    static Engine engine;
    return engine;
}

// ------------------------------------------------- R0: unsupported --

TEST(AnalysisR0, UnsupportedOpcodeIsPositionedError)
{
    // VADDPS needs AVX; Nehalem has none.
    core::BenchmarkSpec spec =
        asmSpec("mov RAX, 1; vaddps XMM0, XMM1, XMM2");
    Report rep = analysis::analyzeSpec(uarch::getMicroArch("Nehalem"),
                                       spec, {});
    ASSERT_EQ(rep.diagnostics.size(), 1u);
    const analysis::Diagnostic &d = rep.diagnostics[0];
    EXPECT_EQ(d.rule, "R0");
    EXPECT_EQ(d.severity, Severity::Error);
    EXPECT_EQ(d.segment, analysis::Segment::Body);
    EXPECT_EQ(d.index, 1);
    EXPECT_NE(d.message.find("Nehalem"), std::string::npos);
}

TEST(AnalysisR0, UnsupportedOpcodeSuppressesOtherRules)
{
    // The decode would fault, so no dataflow rules run: the R15
    // clobber next to the unsupported opcode is not reported.
    core::BenchmarkSpec spec =
        asmSpec("mov R15, 5; vaddps XMM0, XMM1, XMM2");
    spec.loopCount = 10;
    Report rep = analysis::analyzeSpec(uarch::getMicroArch("Nehalem"),
                                       spec, {});
    EXPECT_TRUE(rep.hasRule("R0"));
    EXPECT_FALSE(rep.hasRule("R1"));
}

TEST(AnalysisR0, SupportedOpcodeIsClean)
{
    Report rep = analyze(asmSpec("vaddps XMM0, XMM1, XMM2"));
    EXPECT_FALSE(rep.hasRule("R0"));
}

// ------------------------------------- R1: reserved-register writes --

TEST(AnalysisR1, LoopCounterClobberIsError)
{
    core::BenchmarkSpec spec = asmSpec("mov R15, 5");
    spec.loopCount = 10;
    Report rep = analyze(spec);
    ASSERT_TRUE(rep.hasRule("R1"));
    EXPECT_EQ(rep.count(Severity::Error), 1u);
    // Repeat-block multiplicity: the default unroll factor is 100, so
    // the one static write is 100 dynamic clobbers.
    EXPECT_NE(rep.diagnostics[0].message.find("100 dynamic clobbers"),
              std::string::npos);
}

TEST(AnalysisR1, LoopCounterWriteWithoutLoopIsClean)
{
    // loopCount == 0: nothing reads R15, the write is harmless.
    Report rep = analyze(asmSpec("mov R15, 5"));
    EXPECT_FALSE(rep.hasRule("R1"));
}

TEST(AnalysisR1, SingleCopyClobberSkipsMultiplicityNote)
{
    core::BenchmarkSpec spec = asmSpec("mov R15, 5");
    spec.loopCount = 10;
    spec.unrollCount = 1;
    Report rep = analyze(spec);
    ASSERT_TRUE(rep.hasRule("R1"));
    EXPECT_EQ(rep.diagnostics[0].message.find("dynamic clobbers"),
              std::string::npos);
}

TEST(AnalysisR1, UnderivedR14WriteIsWarning)
{
    Report rep = analyze(asmSpec("mov R14, 42"));
    ASSERT_TRUE(rep.hasRule("R1"));
    EXPECT_EQ(rep.count(Severity::Warning), 1u);
}

TEST(AnalysisR1, PointerChaseKeepsR14Derived)
{
    // The §VI-B latency chase: R14's new value is loaded *through*
    // R14, so it stays derived from the area base.
    Report rep = analyze(asmSpec("mov R14, [R14]"));
    EXPECT_TRUE(rep.clean()) << rep.format();
}

TEST(AnalysisR1, R14ArithmeticStaysDerived)
{
    Report rep = analyze(asmSpec("add R14, 64"));
    EXPECT_FALSE(rep.hasRule("R1"));
}

// ------------------------------------- R2: noMem accumulator abuse --

TEST(AnalysisR2, AccumulatorWriteInNoMemSpecIsError)
{
    core::BenchmarkSpec spec = asmSpec("add R8, 1");
    spec.noMem = true;
    Report rep = analyze(spec);
    ASSERT_TRUE(rep.hasRule("R2"));
    EXPECT_EQ(rep.count(Severity::Error), 1u);
}

TEST(AnalysisR2, AccumulatorReadInNoMemSpecIsWarning)
{
    core::BenchmarkSpec spec = asmSpec("mov RAX, R8");
    spec.noMem = true;
    Report rep = analyze(spec);
    ASSERT_TRUE(rep.hasRule("R2"));
    EXPECT_EQ(rep.count(Severity::Warning), 1u);
}

TEST(AnalysisR2, OneDiagnosticPerAccumulator)
{
    core::BenchmarkSpec spec = asmSpec("add R8, 1; add R8, 2");
    spec.noMem = true;
    Report rep = analyze(spec);
    EXPECT_EQ(rep.diagnostics.size(), 1u) << rep.format();
}

TEST(AnalysisR2, AccumulatorUseWithoutNoMemIsClean)
{
    Report rep = analyze(asmSpec("add R8, 1"));
    EXPECT_FALSE(rep.hasRule("R2"));
}

// ----------------------------------- R3: broken dependency chains --

TEST(AnalysisR3, ExpectWithoutChainIsError)
{
    Context ctx;
    ctx.chain = Context::Chain::Expect;
    Report rep = analyze(asmSpec("mov RAX, RBX"), ctx);
    ASSERT_TRUE(rep.hasRule("R3"));
    EXPECT_EQ(rep.count(Severity::Error), 1u);
}

TEST(AnalysisR3, ExpectAnchorsOnChainBreakingZeroIdiom)
{
    // With the idiom treated as a plain read there *would* be a
    // chain, so the diagnostic points at the idiom instruction.
    Context ctx;
    ctx.chain = Context::Chain::Expect;
    Report rep = analyze(asmSpec("xor RAX, RAX; add RAX, RBX"), ctx);
    ASSERT_TRUE(rep.hasRule("R3"));
    ASSERT_EQ(rep.count(Severity::Error), 1u);
    const analysis::Diagnostic &d = rep.diagnostics[0];
    EXPECT_EQ(d.index, 0);
    EXPECT_NE(d.message.find("zero idiom"), std::string::npos);
}

TEST(AnalysisR3, ExpectWithRealChainIsClean)
{
    Context ctx;
    ctx.chain = Context::Chain::Expect;
    Report rep = analyze(asmSpec("add RAX, RBX"), ctx);
    EXPECT_FALSE(rep.hasRule("R3"));
}

TEST(AnalysisR3, ExpectSeesFlagsChains)
{
    // The SETcc chain threads through RFLAGS, not a GPR.
    Context ctx;
    ctx.chain = Context::Chain::Expect;
    Report rep = analyze(asmSpec("setz AL; test AL, AL"), ctx);
    EXPECT_FALSE(rep.hasRule("R3")) << rep.format();
}

TEST(AnalysisR3, AutoFlagsSingleIdiomChainBreak)
{
    Report rep = analyze(asmSpec("xor RAX, RAX"));
    ASSERT_TRUE(rep.hasRule("R3"));
    EXPECT_EQ(rep.count(Severity::Warning), 1u);
}

TEST(AnalysisR3, AutoStaysSilentOnDepBreakingIdiomPools)
{
    // Throughput benchmarks break dependencies with *many* idioms
    // (one per unrolled copy); that is intentional, not a chain bug.
    Report rep = analyze(asmSpec("xor RAX, RAX; xor RBX, RBX"));
    EXPECT_FALSE(rep.hasRule("R3"));
}

TEST(AnalysisR3, IgnoreSkipsChainAnalysis)
{
    Context ctx;
    ctx.chain = Context::Chain::Ignore;
    Report rep = analyze(asmSpec("xor RAX, RAX"), ctx);
    EXPECT_FALSE(rep.hasRule("R3"));
}

// --------------------------------------- R4: dead measured code --

TEST(AnalysisR4, OverwrittenResultIsWarning)
{
    Report rep = analyze(asmSpec("mov RAX, 5; mov RAX, 6"));
    ASSERT_TRUE(rep.hasRule("R4"));
    EXPECT_EQ(rep.diagnostics[0].index, 0);
}

TEST(AnalysisR4, InterveningReadKeepsResultLive)
{
    Report rep =
        analyze(asmSpec("mov RAX, 5; mov RBX, RAX; mov RAX, 6"));
    EXPECT_FALSE(rep.hasRule("R4"));
}

TEST(AnalysisR4, CrossIterationOverwriteIsNotDead)
{
    // The next unroll copy overwrites RAX -- that is the standard
    // throughput idiom, so the scan must not wrap around.
    Report rep = analyze(asmSpec("mov RAX, 5"));
    EXPECT_FALSE(rep.hasRule("R4"));
}

TEST(AnalysisR4, PartialWidthRedefineDoesNotKill)
{
    // An 8-bit write merges into the old value; the 64-bit result is
    // not dead.
    Report rep = analyze(asmSpec("mov RAX, 5; setz AL"));
    EXPECT_FALSE(rep.hasRule("R4"));
}

// ------------------------------------------ R5: memory footprint --

TEST(AnalysisR5, R14AccessPastAreaEndIsError)
{
    Context ctx; // default 1 MB area
    Report rep = analyze(asmSpec("mov RAX, [R14 + 1048576]"), ctx);
    ASSERT_TRUE(rep.hasRule("R5"));
    EXPECT_EQ(rep.count(Severity::Error), 1u);
}

TEST(AnalysisR5, NegativeR14OffsetIsError)
{
    Report rep = analyze(asmSpec("mov RAX, [R14 - 8]"));
    EXPECT_TRUE(rep.hasRule("R5"));
}

TEST(AnalysisR5, InBoundsR14AccessIsClean)
{
    Report rep = analyze(asmSpec("mov RAX, [R14 + 1048568]"));
    EXPECT_FALSE(rep.hasRule("R5"));
}

TEST(AnalysisR5, BoundsOnlyApplyWhileR14IsExact)
{
    // Once R14 no longer holds the area base, R14-relative offsets
    // mean something else; no bounds claim is possible.
    Report rep = analyze(
        asmSpec("mov RAX, [R14 + 2097152]", "mov R14, RAX"));
    EXPECT_FALSE(rep.hasRule("R5"));
}

TEST(AnalysisR5, ResultAreaOverlapFlaggedAgainstLiveRunner)
{
    Engine engine;
    Session session = engine.session({});
    Context ctx = Context::forRunner(session.runner());
    ASSERT_NE(ctx.resultBase, 0u);

    auto abs_access = [&](bool store) {
        x86::MemRef m;
        m.disp = static_cast<std::int64_t>(ctx.resultBase);
        x86::Instruction insn;
        insn.opcode = x86::Opcode::MOV;
        if (store) {
            insn.operands = {x86::Operand::makeMem(m, 64),
                             x86::Operand::makeReg(x86::Reg::RBX)};
        } else {
            insn.operands = {x86::Operand::makeReg(x86::Reg::RBX),
                             x86::Operand::makeMem(m, 64)};
        }
        core::BenchmarkSpec spec;
        spec.code = {insn};
        return spec;
    };

    Report stores = analyze(abs_access(true), ctx);
    ASSERT_TRUE(stores.hasRule("R5"));
    EXPECT_EQ(stores.count(Severity::Error), 1u);

    Report loads = analyze(abs_access(false), ctx);
    ASSERT_TRUE(loads.hasRule("R5"));
    EXPECT_EQ(loads.count(Severity::Warning), 1u);
}

// -------------------------------------------- R6: flags liveness --

TEST(AnalysisR6, InitFlagsConsumedByBodyIsWarning)
{
    Report rep = analyze(asmSpec("cmovz RAX, RBX", "cmp RAX, RBX"));
    ASSERT_TRUE(rep.hasRule("R6"));
    EXPECT_EQ(rep.count(Severity::Warning), 1u);
    EXPECT_EQ(rep.diagnostics[0].segment, analysis::Segment::Body);
    EXPECT_EQ(rep.diagnostics[0].index, 0);
}

TEST(AnalysisR6, ClearedCarryFeedingCarryReadersSurvives)
{
    // The planners' ADC/SBB pattern: TEST clears CF, the readout's OR
    // accumulation also leaves CF = 0, so the body's carry input is
    // well-defined. Must stay silent.
    Report rep = analyze(
        asmSpec("adc RAX, RBX", "mov RBX, 0; test RBX, RBX"));
    EXPECT_FALSE(rep.hasRule("R6")) << rep.format();
}

TEST(AnalysisR6, NonLogicFlagsWriterDoesNotSurvive)
{
    // ADD's CF depends on its operands -- nothing guarantees the
    // readout preserves it.
    Report rep = analyze(asmSpec("adc RAX, RBX", "add RBX, 1"));
    EXPECT_TRUE(rep.hasRule("R6"));
}

TEST(AnalysisR6, BodyDefinedFlagsAreFine)
{
    Report rep = analyze(
        asmSpec("test RAX, RAX; cmovz RAX, RBX", "cmp RAX, RBX"));
    EXPECT_FALSE(rep.hasRule("R6"));
}

// ------------------------------------- serialization round-trips --

Report
sampleReport()
{
    core::BenchmarkSpec spec =
        asmSpec("mov R15, 5; mov RAX, 5; mov RAX, 6");
    spec.loopCount = 10;
    return analyze(spec);
}

TEST(AnalysisReport, JsonRoundTrip)
{
    Report rep = sampleReport();
    ASSERT_FALSE(rep.empty());
    EXPECT_EQ(Report::fromJson(rep.toJson()), rep);

    Report empty;
    EXPECT_EQ(Report::fromJson(empty.toJson()), empty);
}

TEST(AnalysisReport, CsvRoundTrip)
{
    Report rep = sampleReport();
    ASSERT_FALSE(rep.empty());
    EXPECT_EQ(Report::fromCsv(rep.toCsv()), rep);
}

TEST(AnalysisReport, CsvEscapesSeparatorsAndQuotes)
{
    Report rep;
    analysis::Diagnostic d;
    d.rule = "R9";
    d.severity = Severity::Info;
    d.segment = analysis::Segment::Init;
    d.index = 3;
    d.insn = "mov RAX, 5";
    d.message = "a \"quoted\" message, with commas";
    rep.diagnostics.push_back(d);
    EXPECT_EQ(Report::fromCsv(rep.toCsv()), rep);
    EXPECT_EQ(Report::fromJson(rep.toJson()), rep);
}

TEST(AnalysisReport, FormatMentionsRuleAndPosition)
{
    core::BenchmarkSpec spec = asmSpec("mov R15, 5");
    spec.loopCount = 1;
    Report rep = analyze(spec);
    ASSERT_FALSE(rep.empty());
    std::string line = rep.diagnostics[0].format();
    EXPECT_NE(line.find("error R1 body[0]"), std::string::npos)
        << line;
}

// ------------------------------- lintLevel gate in Session::run --

TEST(AnalysisLintLevel, OffRunsWarningSpecs)
{
    Engine engine;
    Session session = engine.session({});
    core::BenchmarkSpec spec = asmSpec("mov RAX, 5; mov RAX, 6");
    RunOutcome outcome = session.run(spec);
    EXPECT_TRUE(outcome.ok());
}

TEST(AnalysisLintLevel, WarnRejectsWarningSpecs)
{
    Engine engine;
    Session session = engine.session({});
    core::BenchmarkSpec spec = asmSpec("mov RAX, 5; mov RAX, 6");
    spec.lintLevel = core::LintLevel::Warn;
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::LintError);
    EXPECT_NE(outcome.error().message.find("R4"), std::string::npos);
}

TEST(AnalysisLintLevel, ErrorLevelPassesWarningSpecs)
{
    Engine engine;
    Session session = engine.session({});
    core::BenchmarkSpec spec = asmSpec("mov RAX, 5; mov RAX, 6");
    spec.lintLevel = core::LintLevel::Error;
    RunOutcome outcome = session.run(spec);
    EXPECT_TRUE(outcome.ok());
}

TEST(AnalysisLintLevel, ErrorLevelStopsLoopCounterClobber)
{
    // Without the gate this spec never terminates (the body reloads
    // the loop counter every iteration); the lint error returns
    // before execution starts.
    Engine engine;
    Session session = engine.session({});
    core::BenchmarkSpec spec = asmSpec("mov R15, 5");
    spec.loopCount = 10;
    spec.lintLevel = core::LintLevel::Error;
    RunOutcome outcome = session.run(spec);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, RunError::Code::LintError);
}

TEST(AnalysisLintLevel, CleanSpecsRunAtAnyLevel)
{
    Engine engine;
    Session session = engine.session({});
    core::BenchmarkSpec spec = asmSpec("add RAX, RBX");
    spec.lintLevel = core::LintLevel::Warn;
    EXPECT_TRUE(session.run(spec).ok());
}

TEST(AnalysisLintLevel, NamesRoundTrip)
{
    for (core::LintLevel l :
         {core::LintLevel::Off, core::LintLevel::Warn,
          core::LintLevel::Error}) {
        auto back = core::lintLevelFromName(core::lintLevelName(l));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, l);
    }
    EXPECT_FALSE(core::lintLevelFromName("loud").has_value());
}

// ----------------------------------------------- report memoing --

TEST(AnalysisCache, RepeatedSpecsHitTheMemo)
{
    core::BenchmarkSpec spec = asmSpec("add RAX, 987654");
    CacheStats before = analysis::lintCacheCounters();
    Report first = analysis::analyzeSpecCached(skylake(), spec, {});
    CacheStats mid = analysis::lintCacheCounters();
    EXPECT_EQ(mid.misses, before.misses + 1);
    Report second = analysis::analyzeSpecCached(skylake(), spec, {});
    CacheStats after = analysis::lintCacheCounters();
    EXPECT_EQ(after.hits, mid.hits + 1);
    EXPECT_EQ(after.misses, mid.misses);
    EXPECT_EQ(first, second);
}

TEST(AnalysisCache, ContextIsPartOfTheKey)
{
    core::BenchmarkSpec spec = asmSpec("mov RAX, 987655");
    Context expect;
    expect.chain = Context::Chain::Expect;
    Report lazy = analysis::analyzeSpecCached(skylake(), spec, {});
    Report strict =
        analysis::analyzeSpecCached(skylake(), spec, expect);
    EXPECT_FALSE(lazy.hasRule("R3"));
    EXPECT_TRUE(strict.hasRule("R3"));
}

// ------------------------------------------ R7: model consistency --

TEST(AnalysisR7, LatencyIntentWithoutBindingChainIsError)
{
    // MOV RAX, RBX never threads back to itself: the static model
    // predicts a throughput-bound body, so a declared latency
    // measurement is inconsistent.
    Context ctx;
    ctx.intent = Context::Intent::Latency;
    Report rep = analyze(asmSpec("mov RAX, RBX"), ctx);
    ASSERT_TRUE(rep.hasRule("R7"));
    EXPECT_EQ(rep.count(Severity::Error), 1u);
}

TEST(AnalysisR7, LatencyIntentWithBindingChainIsClean)
{
    Context ctx;
    ctx.intent = Context::Intent::Latency;
    Report rep = analyze(asmSpec("add RAX, RAX"), ctx);
    EXPECT_FALSE(rep.hasRule("R7"));
}

TEST(AnalysisR7, FlagSerializedThroughputIsInfoOnly)
{
    // ADC chains through RFLAGS no matter how copies are arranged
    // (the uops.info special case): worth surfacing, not an error.
    Context ctx;
    ctx.intent = Context::Intent::Throughput;
    Report rep = analyze(asmSpec("adc RAX, RBX"), ctx);
    ASSERT_TRUE(rep.hasRule("R7"));
    EXPECT_EQ(rep.count(Severity::Info), 1u);
    EXPECT_TRUE(rep.clean());
}

TEST(AnalysisR7, ThroughputIntentOnParallelMixIsClean)
{
    Context ctx;
    ctx.intent = Context::Intent::Throughput;
    Report rep = analyze(
        asmSpec("lea RAX, [RBX]; lea RCX, [RBX]; lea RDX, [RBX]"),
        ctx);
    EXPECT_FALSE(rep.hasRule("R7"));
}

TEST(AnalysisR7, NoDeclaredIntentSkipsTheRule)
{
    Report rep = analyze(asmSpec("mov RAX, RBX"));
    EXPECT_FALSE(rep.hasRule("R7"));
}

TEST(AnalysisR7, IntentIsPartOfTheCacheKey)
{
    core::BenchmarkSpec spec = asmSpec("mov RAX, 987656");
    Context latency;
    latency.intent = Context::Intent::Latency;
    Report lazy = analysis::analyzeSpecCached(skylake(), spec, {});
    Report strict =
        analysis::analyzeSpecCached(skylake(), spec, latency);
    EXPECT_FALSE(lazy.hasRule("R7"));
    EXPECT_TRUE(strict.hasRule("R7"));
}

// ------------------------------ planner self-verification sweep --

TEST(AnalysisSweep, CharacterizerPlansLintCleanOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        SessionOptions opt;
        opt.uarch = name;
        Session session = sweepEngine().session(opt);
        uops::Characterizer tool(session);
        uops::CharacterizationPlan plan = tool.plan();
        const uarch::MicroArch &ua = uarch::getMicroArch(name);
        Context ctx = Context::forRunner(session.runner());
        for (const uops::PlannedSpec &ps : plan.specs) {
            ctx.chain =
                ps.role == uops::PlannedSpec::Role::Latency
                    ? Context::Chain::Expect
                    : Context::Chain::Auto;
            // R7: the role tag is the declared measurement intent.
            ctx.intent =
                ps.role == uops::PlannedSpec::Role::Latency
                    ? Context::Intent::Latency
                    : Context::Intent::Throughput;
            Report rep =
                analysis::analyzeSpecCached(ua, ps.spec, ctx);
            ASSERT_TRUE(rep.clean())
                << name << " variant " << ps.variant << " ("
                << ps.spec.asmCode << "):\n"
                << rep.format();
        }
    }
}

TEST(AnalysisSweep, ProfilePlansLintCleanOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        profile::ProfileOptions opt;
        opt.session.uarch = name;
        opt.maxAssoc = 18;
        opt.policySequences = 10;
        opt.tlbMaxPages = 512;
        opt.duelingScan = false;
        profile::ProfilePlan plan = profile::planMachineProfile(opt);
        const uarch::MicroArch &ua = uarch::getMicroArch(name);
        // Lint against the exact machine state the campaign will
        // build, not a conservative fresh-runner default: forCampaign
        // applies the same machineSetup hook buildMachineProfile
        // passes to Engine::runCampaign (idempotent by contract).
        SessionOptions sopt;
        sopt.uarch = name;
        Session session = sweepEngine().session(sopt);
        Context ctx = Context::forCampaign(
            session.runner(), [&plan](core::Runner &runner) {
                profile::prepareProfileMachine(runner, plan);
            });
        for (std::size_t i = 0; i < plan.specs.size(); ++i) {
            Report rep = analysis::analyzeSpecCached(
                ua, plan.specs[i], ctx);
            ASSERT_TRUE(rep.clean())
                << name << " profile spec " << i << ":\n"
                << rep.format();
        }
    }
}

TEST(AnalysisSweep, CacheSeqPlansLintCleanOnAllUarches)
{
    for (const std::string &name : uarch::allMicroArchNames()) {
        SessionOptions sopt;
        sopt.uarch = name;
        Session session = sweepEngine().session(sopt);
        cachetools::CacheSeqOptions copt;
        copt.level = cachetools::CacheLevel::L1;
        copt.set = 3;
        copt.disablePrefetchers = false;
        cachetools::CacheSeq seq(session, copt);
        std::vector<cachetools::SeqAccess> accesses;
        for (int block : {0, 1, 2, 3, 0, 1, 2, 3})
            accesses.push_back({block});
        core::BenchmarkSpec spec = seq.planSeq(accesses);
        Context ctx = Context::forRunner(session.runner());
        Report rep = analysis::analyzeSpecCached(
            uarch::getMicroArch(name), spec, ctx);
        ASSERT_TRUE(rep.clean())
            << name << " cacheSeq plan:\n"
            << rep.format();
    }
}

TEST(AnalysisSweep, DuelingPlanLintsClean)
{
    // Planned set-dueling scan on an adaptive-L3 part (§VI-D).
    SessionOptions sopt;
    sopt.uarch = "IvyBridge";
    Session session = sweepEngine().session(sopt);
    const auto &duel =
        uarch::getMicroArch("IvyBridge").cacheConfig.l3Dueling;
    ASSERT_FALSE(duel.policyA.empty());
    cachetools::DuelingScanner scanner(session, duel.policyA,
                                       duel.policyB);
    cachetools::DuelingPlanOptions opt;
    opt.setLo = 512;
    opt.setHi = 527;
    opt.stride = 16;
    opt.trainReplays = 4;
    Addr need = scanner.planAreaSize(opt);
    if (need > session.runner().r14AreaSize()) {
        ASSERT_TRUE(session.runner().reserveR14Area(need));
    }
    cachetools::DuelingPlan plan = scanner.plan(opt);
    ASSERT_FALSE(plan.specs.empty());
    Context ctx = Context::forRunner(session.runner());
    for (std::size_t i = 0; i < plan.specs.size(); ++i) {
        Report rep = analysis::analyzeSpecCached(
            uarch::getMicroArch("IvyBridge"), plan.specs[i], ctx);
        ASSERT_TRUE(rep.clean())
            << "dueling probe " << i << ":\n"
            << rep.format();
    }
}

} // namespace
} // namespace nb
