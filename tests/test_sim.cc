/**
 * @file
 * Tests for the simulated machine: instruction semantics, the dataflow
 * timing model (latency/throughput/ports), counter-read sampling and
 * serialization (§IV-A1), privilege checks (§III-D), and the interrupt
 * model (§IV-A2).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/machine.hh"
#include "x86/assembler.hh"

namespace nb::sim
{
namespace
{

using x86::assemble;
using x86::Reg;

/** A kernel-mode machine with a few identity-mapped pages. */
std::unique_ptr<Machine>
makeMachine(const std::string &uarch = "Skylake", bool kernel = true)
{
    auto m = std::make_unique<Machine>(uarch::getMicroArch(uarch), 42);
    m->setPrivilege(kernel ? Privilege::Kernel : Privilege::User);
    m->setInterruptsEnabled(false);
    for (Addr page = 0; page < 64; ++page) {
        m->memory().pageTable().mapPage(0x10000 + page * kPageSize,
                                        0x10000 + page * kPageSize);
    }
    return m;
}

std::uint64_t
gpr(Machine &m, Reg r)
{
    return m.arch().readGpr(r, 64);
}

/** Decode-and-execute: these tests exercise machine semantics, not
 *  program caching, so each snippet is decoded fresh at the call. */
ExecStats
execProgram(Machine &m, const std::vector<x86::Instruction> &code)
{
    return m.execute(Program::decode(m.uarch(), code));
}

TEST(Semantics, MovAndAluBasics)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 7; mov RBX, RAX; add RBX, 5; "
                        "sub RAX, 3; xor RCX, RCX"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 4u);
    EXPECT_EQ(gpr(*m, Reg::RBX), 12u);
    EXPECT_EQ(gpr(*m, Reg::RCX), 0u);
}

TEST(Semantics, ThirtyTwoBitWritesZeroExtend)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, -1; mov EAX, 5"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 5u);
}

TEST(Semantics, PartialWritesMerge)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 0x1234; mov AL, 0"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 0x1200u);
}

TEST(Semantics, FlagsAndConditionalBranch)
{
    auto m = makeMachine();
    // Loop: counts 5 iterations through R15/JNZ (the generated-code
    // loop shape from Algorithm 1).
    execProgram(*m, assemble(
        "mov R15, 5; xor RAX, RAX; loop: add RAX, 2; dec R15; jnz loop"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 10u);
}

TEST(Semantics, CmovAndSetcc)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 1; cmp RAX, 1; setz BL; "
                        "mov RCX, 99; cmovz RCX, RAX"));
    EXPECT_EQ(gpr(*m, Reg::RBX) & 0xFF, 1u);
    EXPECT_EQ(gpr(*m, Reg::RCX), 1u);
}

TEST(Semantics, MulDivPair)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 100; mov RBX, 7; mul RBX; "
                        "mov RCX, RAX; mov RAX, 700; xor RDX, RDX; "
                        "mov RBX, 7; div RBX"));
    EXPECT_EQ(gpr(*m, Reg::RCX), 700u);
    EXPECT_EQ(gpr(*m, Reg::RAX), 100u);
    EXPECT_EQ(gpr(*m, Reg::RDX), 0u);
}

TEST(Semantics, DivideByZeroFaults)
{
    auto m = makeMachine();
    EXPECT_THROW(execProgram(*m, assemble("xor RBX, RBX; mov RAX, 1; div RBX")),
                 FatalError);
}

TEST(Semantics, ImulForms)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 6; mov RBX, 7; imul RAX, RBX; "
                        "imul RCX, RBX, 3"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 42u);
    EXPECT_EQ(gpr(*m, Reg::RCX), 21u);
}

TEST(Semantics, ShiftsAndBitOps)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 1; shl RAX, 12; mov RBX, RAX; "
                        "shr RBX, 4; popcnt RCX, RAX; tzcnt RDX, RAX"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 4096u);
    EXPECT_EQ(gpr(*m, Reg::RBX), 256u);
    EXPECT_EQ(gpr(*m, Reg::RCX), 1u);
    EXPECT_EQ(gpr(*m, Reg::RDX), 12u);
}

TEST(Semantics, LoadStoreRoundTrip)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RAX, 0xABCD; mov [0x10040], RAX; "
                        "mov RBX, [0x10040]"));
    EXPECT_EQ(gpr(*m, Reg::RBX), 0xABCDu);
    EXPECT_EQ(m->memory().readVirt(0x10040, 8), 0xABCDu);
}

TEST(Semantics, AddressingModes)
{
    auto m = makeMachine();
    // 0x10000 + 8*8 + 0x40 = 0x10080.
    execProgram(*m, assemble("mov RBX, 0x10000; mov RCX, 8; mov RAX, 42; "
                        "mov [RBX+RCX*8+0x40], RAX; "
                        "mov RDX, [0x10080]"));
    EXPECT_EQ(gpr(*m, Reg::RDX), 42u);
}

TEST(Semantics, PushPopAndCallRet)
{
    auto m = makeMachine();
    m->arch().writeGpr(Reg::RSP, 64, 0x10000 + 32 * kPageSize);
    execProgram(*m, assemble("mov RAX, 11; push RAX; mov RAX, 0; pop RBX"));
    EXPECT_EQ(gpr(*m, Reg::RBX), 11u);

    execProgram(*m, assemble("mov RAX, 1; call f; add RAX, 100; jmp done; "
                        "f: add RAX, 10; ret; done: nop"));
    EXPECT_EQ(gpr(*m, Reg::RAX), 111u);
}

TEST(Semantics, PointerChase)
{
    // The §III-A idiom: store the pointer to itself, then chase it.
    auto m = makeMachine();
    execProgram(*m, assemble("mov R14, 0x10000; mov [R14], R14; "
                        "mov R14, [R14]; mov R14, [R14]"));
    EXPECT_EQ(gpr(*m, Reg::R14), 0x10000u);
}

TEST(Semantics, VectorOps)
{
    auto m = makeMachine();
    execProgram(*m, assemble("pxor XMM1, XMM1; pxor XMM2, XMM2; "
                        "paddd XMM1, XMM2"));
    EXPECT_EQ(m->arch().readVec(Reg::XMM1)[0], 0u);
    // Store/load 128-bit.
    m->arch().writeVec(Reg::XMM3, {1, 2, 0, 0});
    execProgram(*m, assemble("movaps [0x10080], XMM3; movaps XMM4, [0x10080]"));
    EXPECT_EQ(m->arch().readVec(Reg::XMM4)[0], 1u);
    EXPECT_EQ(m->arch().readVec(Reg::XMM4)[1], 2u);
}

TEST(Semantics, PageFaultOnUnmapped)
{
    auto m = makeMachine();
    EXPECT_THROW(execProgram(*m, assemble("mov RAX, [0x900000]")), FatalError);
}

TEST(Semantics, RunawayLoopGuard)
{
    auto m = makeMachine();
    m->setMaxInstructions(10000);
    EXPECT_THROW(execProgram(*m, assemble("spin: jmp spin")), FatalError);
}

// -------------------------------------------------------- privileges --

TEST(Privilege, PrivilegedInstructionsFaultInUserMode)
{
    for (const char *text : {"rdmsr", "wrmsr", "wbinvd", "cli", "sti"}) {
        auto m = makeMachine("Skylake", false);
        m->arch().writeGpr(Reg::RCX, 64, msr::kAperf);
        EXPECT_THROW(execProgram(*m, assemble(text)), FatalError) << text;
    }
}

TEST(Privilege, KernelModeAllowsPrivileged)
{
    auto m = makeMachine();
    execProgram(*m, assemble("wbinvd; cli; sti"));
    m->arch().writeGpr(Reg::RCX, 64, msr::kAperf);
    execProgram(*m, assemble("rdmsr"));
}

TEST(Privilege, RdpmcRespectsCr4Pce)
{
    auto m = makeMachine("Skylake", false);
    m->setRdpmcUserEnabled(false);
    m->arch().writeGpr(Reg::RCX, 64, kRdpmcFixedBase);
    EXPECT_THROW(execProgram(*m, assemble("rdpmc")), FatalError);
    m->setRdpmcUserEnabled(true);
    execProgram(*m, assemble("rdpmc"));
}

// ------------------------------------------------------------ timing --

/** Measured cycles of a code block via fixed counter 1, LFENCE-fenced. */
Cycles
measureCycles(Machine &m, const std::string &body)
{
    auto pre = assemble("lfence");
    execProgram(m, pre);
    Cycles before = m.cycles();
    execProgram(m, assemble(body));
    execProgram(m, pre);
    return m.cycles() - before;
}

TEST(Timing, DependentAddChainIsOneCyclePerLink)
{
    auto m = makeMachine();
    std::string chain;
    for (int i = 0; i < 100; ++i)
        chain += "add RAX, RBX;";
    Cycles c = measureCycles(*m, chain);
    EXPECT_NEAR(c, 100, 6);
}

TEST(Timing, DependentImulChainIsThreeCyclesPerLink)
{
    auto m = makeMachine();
    std::string chain;
    for (int i = 0; i < 100; ++i)
        chain += "imul RAX, RAX;";
    EXPECT_NEAR(measureCycles(*m, chain), 300, 8);
}

TEST(Timing, IndependentAddsReachIssueWidth)
{
    auto m = makeMachine();
    std::string body;
    for (int i = 0; i < 50; ++i)
        body += "add RAX, 1; add RBX, 1; add RSI, 1; add RDI, 1;";
    // 200 independent single-µop adds on a 4-wide machine: ~50 cycles.
    EXPECT_NEAR(measureCycles(*m, body), 50, 10);
}

TEST(Timing, ZeroIdiomBreaksDependency)
{
    auto m = makeMachine();
    std::string chained, broken;
    for (int i = 0; i < 60; ++i) {
        chained += "imul RAX, RAX;";
        broken += "imul RAX, RAX; xor RAX, RAX;";
    }
    Cycles with_dep = measureCycles(*m, chained);
    Cycles without_dep = measureCycles(*m, broken);
    EXPECT_LT(without_dep, with_dep / 2);
}

TEST(Timing, L1LoadLatencyFourCycles)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov R14, 0x10000; mov [R14], R14"));
    std::string chase;
    for (int i = 0; i < 100; ++i)
        chase += "mov R14, [R14];";
    EXPECT_NEAR(measureCycles(*m, chase), 400, 12);
}

TEST(Timing, LoadPortsSplitEvenly)
{
    auto m = makeMachine();
    m->pmu().configureProg(0, sim::EventCode{0xA1, 0x04}); // PORT_2
    m->pmu().configureProg(1, sim::EventCode{0xA1, 0x08}); // PORT_3
    execProgram(*m, assemble("mov R14, 0x10000; mov [R14], R14"));
    auto p2_before = m->pmu().total(EventId::UopsPort2);
    auto p3_before = m->pmu().total(EventId::UopsPort3);
    std::string chase;
    for (int i = 0; i < 200; ++i)
        chase += "mov R14, [R14];";
    execProgram(*m, assemble(chase));
    auto p2 = m->pmu().total(EventId::UopsPort2) - p2_before;
    auto p3 = m->pmu().total(EventId::UopsPort3) - p3_before;
    EXPECT_NEAR(p2, 100, 8);
    EXPECT_NEAR(p3, 100, 8);
}

TEST(Timing, MispredictionPenaltyAndTraining)
{
    auto m = makeMachine();
    // A loop branch mispredicts at most a couple of times once the
    // 2-bit counters are warm (§III-H).
    auto before = m->pmu().total(EventId::BrMispRetired);
    execProgram(*m, assemble("mov R15, 50; l: dec R15; jnz l"));
    auto first = m->pmu().total(EventId::BrMispRetired) - before;
    before = m->pmu().total(EventId::BrMispRetired);
    execProgram(*m, assemble("mov R15, 50; l: dec R15; jnz l"));
    auto second = m->pmu().total(EventId::BrMispRetired) - before;
    EXPECT_LE(second, first);
    EXPECT_LE(second, 2u);
}

TEST(Timing, DivBlocksTheDivider)
{
    auto m = makeMachine();
    // Dependency-broken divisions: throughput limited by blockCycles.
    std::string body;
    for (int i = 0; i < 20; ++i)
        body += "mov RAX, 1000; xor RDX, RDX; div RBX;";
    execProgram(*m, assemble("mov RBX, 3"));
    Cycles c = measureCycles(*m, body);
    EXPECT_GT(c, 20 * 20); // ~24+ cycles each, way below latency*count
}

// -------------------------------------------------- counter sampling --

TEST(Counters, RdpmcReadsFixedCounter)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov RCX, 0x40000000; rdpmc; mov RSI, RAX"));
    std::uint64_t instr1 = gpr(*m, Reg::RSI);
    EXPECT_GT(instr1, 0u);
    // The fence makes the second read observe the three NOPs (§IV-A1).
    execProgram(*m, assemble(
        "nop; nop; nop; lfence; mov RCX, 0x40000000; rdpmc"));
    std::uint64_t instr2 =
        gpr(*m, Reg::RAX) | (gpr(*m, Reg::RDX) << 32);
    EXPECT_GE(instr2, instr1 + 3);
}

TEST(Counters, ProgrammableCounterViaMsrInterface)
{
    auto m = makeMachine();
    // Program counter 0 with UOPS_ISSUED.ANY via WRMSR, then read it
    // with RDPMC -- the §II mechanism.
    std::uint64_t evtsel = 0x0E | (0x01 << 8) | (1 << 22);
    m->arch().writeGpr(Reg::RCX, 64, msr::kPerfEvtSel0);
    m->arch().writeGpr(Reg::RAX, 64, evtsel & 0xFFFFFFFF);
    m->arch().writeGpr(Reg::RDX, 64, evtsel >> 32);
    execProgram(*m, assemble("wrmsr"));
    EXPECT_EQ(m->pmu().progEvent(0), EventId::UopsIssued);

    execProgram(*m, assemble("xor RCX, RCX; rdpmc; mov RSI, RAX; "
                        "add RBX, 1; add RBX, 1; add RBX, 1;"
                        "xor RCX, RCX; rdpmc"));
    std::uint64_t diff = gpr(*m, Reg::RAX) - gpr(*m, Reg::RSI);
    EXPECT_GE(diff, 3u);
}

TEST(Counters, PauseResumeGating)
{
    auto m = makeMachine();
    m->pmu().configureProg(0, sim::EventCode{0x0E, 0x01});
    auto total_before = m->pmu().total(EventId::UopsIssued);
    execProgram(*m, assemble("pfc_pause; add RAX, 1; add RAX, 1; pfc_resume"));
    auto gated = m->pmu().total(EventId::UopsIssued) - total_before;
    EXPECT_EQ(gated, 0u);
    execProgram(*m, assemble("add RAX, 1"));
    EXPECT_GT(m->pmu().total(EventId::UopsIssued), total_before);
}

TEST(Counters, UnfencedReadSamplesEarly)
{
    // §IV-A1: without serialization the RDPMC may execute before older
    // long-latency work completes, under-counting cycles.
    auto measure = [](bool fenced) {
        auto m = makeMachine();
        std::string body = "mov RCX, 0x40000001; rdpmc; mov RSI, RAX;";
        for (int i = 0; i < 40; ++i)
            body += "imul RBX, RBX;";
        body += fenced ? "lfence; mov RCX, 0x40000001; rdpmc"
                       : "mov RCX, 0x40000001; rdpmc";
        execProgram(*m, assemble("mov RBX, 3"));
        execProgram(*m, assemble(body));
        return gpr(*m, Reg::RAX) - gpr(*m, Reg::RSI);
    };
    std::uint64_t fenced = measure(true);
    std::uint64_t unfenced = measure(false);
    EXPECT_GE(fenced, 120u);  // waits for the 40x3-cycle chain
    EXPECT_LT(unfenced, 60u); // sampled long before completion
}

TEST(Counters, CpuidHasVariableCost)
{
    auto m = makeMachine();
    std::vector<std::uint64_t> costs;
    for (int i = 0; i < 10; ++i) {
        Cycles before = m->cycles();
        execProgram(*m, assemble("cpuid"));
        costs.push_back(m->cycles() - before);
    }
    // Not all executions take the same time (Paoloni's observation).
    std::sort(costs.begin(), costs.end());
    EXPECT_NE(costs.front(), costs.back());
}

TEST(Counters, AperfMperfViaRdmsr)
{
    auto m = makeMachine();
    execProgram(*m, assemble("imul RAX, RAX; imul RAX, RAX; imul RAX, RAX"));
    std::uint64_t aperf = m->readMsr(msr::kAperf);
    std::uint64_t mperf = m->readMsr(msr::kMperf);
    EXPECT_GT(aperf, 0u);
    // MPERF runs at the (slower) reference clock.
    EXPECT_LT(mperf, aperf);
}

TEST(Counters, UncoreCountersKernelOnly)
{
    auto m = makeMachine();
    // Kernel: CBox lookup counter is readable.
    (void)m->readMsr(msr::kCboxLookupBase);
    // The MSR path itself is privileged at the instruction level.
    auto u = makeMachine("Skylake", false);
    u->arch().writeGpr(Reg::RCX, 64, msr::kCboxLookupBase);
    EXPECT_THROW(execProgram(*u, assemble("rdmsr")), FatalError);
}

// -------------------------------------------------------- interrupts --

TEST(Interrupts, PerturbOnlyWhenEnabled)
{
    auto run = [](bool irq_enabled) {
        Machine m(uarch::getMicroArch("Skylake"), 7);
        m.setPrivilege(Privilege::Kernel);
        m.setInterruptsEnabled(irq_enabled);
        auto before = m.pmu().total(EventId::InstrRetired);
        std::vector<x86::Instruction> code =
            assemble("mov R15, 2000000; l: dec R15; jnz l");
        ExecStats stats = execProgram(m, code);
        EXPECT_EQ(stats.interrupts > 0, irq_enabled);
        return m.pmu().total(EventId::InstrRetired) - before;
    };
    std::uint64_t with_irq = run(true);
    std::uint64_t without_irq = run(false);
    // The interrupt handlers retire extra instructions (§IV-A2).
    EXPECT_GT(with_irq, without_irq);
}

TEST(Interrupts, CliStiControl)
{
    auto m = makeMachine();
    execProgram(*m, assemble("sti"));
    EXPECT_TRUE(m->interruptsEnabled());
    execProgram(*m, assemble("cli"));
    EXPECT_FALSE(m->interruptsEnabled());
}

// --------------------------------------------------------------- TLB --

TEST(Tlb, ArrayLruReplacement)
{
    TlbArray tlb({8, 2}); // 4 sets x 2 ways
    EXPECT_FALSE(tlb.access(0));  // set 0
    EXPECT_FALSE(tlb.access(4));  // set 0
    EXPECT_TRUE(tlb.access(0));
    EXPECT_FALSE(tlb.access(8));  // set 0: evicts LRU = vpn 4
    EXPECT_TRUE(tlb.access(0));
    EXPECT_FALSE(tlb.access(4));
    tlb.flush();
    EXPECT_FALSE(tlb.probe(0));
}

TEST(Tlb, TwoLevelPenalties)
{
    Tlb tlb;
    auto first = tlb.access(0x5000);
    EXPECT_EQ(first.level, TlbLevel::PageWalk);
    EXPECT_EQ(first.penalty, tlb.config().walkLatency);
    auto second = tlb.access(0x5000);
    EXPECT_EQ(second.level, TlbLevel::Dtlb);
    EXPECT_EQ(second.penalty, 0u);
    EXPECT_EQ(tlb.dtlbMisses(), 1u);
    EXPECT_EQ(tlb.stlbMisses(), 1u);
}

TEST(Tlb, StlbCatchesDtlbEvictions)
{
    Tlb tlb;
    unsigned dtlb_entries = tlb.config().dtlb.entries;
    // Touch 2x the DTLB capacity, then revisit: misses hit the STLB.
    for (unsigned i = 0; i < 2 * dtlb_entries; ++i)
        tlb.access(i * kPageSize);
    auto res = tlb.access(0);
    EXPECT_EQ(res.level, TlbLevel::Stlb);
    EXPECT_EQ(res.penalty, tlb.config().stlbLatency);
}

TEST(Tlb, MachineCountsTlbEvents)
{
    auto m = makeMachine();
    m->pmu().configureProg(0, sim::EventCode{0x08, 0x01});
    auto walks_before = m->pmu().total(EventId::DtlbMissWalk);
    // 8 loads from 8 different (fresh) pages: 8 walks.
    std::string body;
    for (int i = 0; i < 8; ++i)
        body += "mov RBX, [0x1" + std::to_string(i) + "000];";
    execProgram(*m, assemble(body));
    EXPECT_EQ(m->pmu().total(EventId::DtlbMissWalk) - walks_before, 8u);
    // Re-run: all DTLB hits now.
    walks_before = m->pmu().total(EventId::DtlbMissWalk);
    execProgram(*m, assemble(body));
    EXPECT_EQ(m->pmu().total(EventId::DtlbMissWalk) - walks_before, 0u);
}

TEST(Tlb, MissPenaltyExtendsLoadLatency)
{
    auto m = makeMachine();
    execProgram(*m, assemble("mov R14, 0x10000; mov [R14], R14"));
    // Warm chase: 4 cycles/load; after a TLB flush the first load of
    // the page pays the walk.
    std::string chase;
    for (int i = 0; i < 50; ++i)
        chase += "mov R14, [R14];";
    Cycles warm = measureCycles(*m, chase);
    m->tlb().flush();
    Cycles cold = measureCycles(*m, chase);
    EXPECT_EQ(cold - warm, m->tlb().config().walkLatency);
}

// --------------------------------------------------------- footprint --

TEST(Frontend, HugeCodeFootprintSlowsIssue)
{
    // §III-F: unrolled code that no longer fits the instruction cache
    // decodes slower than loop-kept code.
    auto big = makeMachine();
    std::vector<x86::Instruction> code;
    auto nop = assemble("nop")[0];
    for (int i = 0; i < 20000; ++i)
        code.push_back(nop);
    Cycles before = big->cycles();
    execProgram(*big, code);
    Cycles big_cycles = big->cycles() - before;

    auto small = makeMachine();
    std::vector<x86::Instruction> small_code(
        code.begin(), code.begin() + 2000);
    Cycles sum = 0;
    for (int i = 0; i < 10; ++i) {
        before = small->cycles();
        execProgram(*small, small_code);
        sum += small->cycles() - before;
    }
    EXPECT_GT(big_cycles, sum * 3 / 2);
}

} // namespace
} // namespace nb::sim
