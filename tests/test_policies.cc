/**
 * @file
 * Tests for the replacement-policy framework (§VI-B): behaviour of each
 * policy, the QLRU naming scheme, and cross-policy property tests.
 */

#include <gtest/gtest.h>

#include "cache/policy.hh"
#include "cachetools/policy_sim.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace nb::cache
{
namespace
{

using cachetools::PolicySim;
using cachetools::parseAccessSeq;

Rng &
testRng()
{
    static Rng rng(2024);
    return rng;
}

PolicySim
makeSim(const std::string &name, unsigned assoc = 4)
{
    return PolicySim(makePolicy(name, assoc, &testRng()));
}

// ------------------------------------------------------------- LRU --

TEST(Lru, EvictsLeastRecentlyUsed)
{
    auto sim = makeSim("LRU");
    for (int b = 0; b < 4; ++b)
        sim.access(b);
    sim.access(0);       // 0 is now MRU; 1 is LRU
    sim.access(4);       // evicts 1
    EXPECT_TRUE(sim.access(0));
    EXPECT_FALSE(sim.access(1));
}

TEST(Lru, SequenceHits)
{
    auto sim = makeSim("LRU");
    // <wbinvd> 0 1 2 3 0 1 2 3 -> all hits in the second round.
    EXPECT_EQ(sim.runSequence(
                  parseAccessSeq("<wbinvd> B0? B1? B2? B3? B0 B1 B2 B3")),
              4u);
}

TEST(Lru, ThrashingPattern)
{
    auto sim = makeSim("LRU");
    // Cyclic pattern over assoc+1 blocks: LRU gets zero hits.
    unsigned hits = 0;
    for (int round = 0; round < 4; ++round)
        for (int b = 0; b < 5; ++b)
            hits += sim.access(b) ? 1 : 0;
    EXPECT_EQ(hits, 0u);
}

// ------------------------------------------------------------ FIFO --

TEST(Fifo, HitsDoNotRefresh)
{
    auto sim = makeSim("FIFO");
    for (int b = 0; b < 4; ++b)
        sim.access(b);
    sim.access(0); // hit; does NOT move 0 away from the head
    sim.access(4); // evicts 0 (oldest insertion)
    EXPECT_FALSE(sim.access(0));
}

TEST(Fifo, DiffersFromLru)
{
    auto seq = parseAccessSeq("<wbinvd> B0 B1 B2 B3 B0 B4 B0");
    auto lru = makeSim("LRU");
    auto fifo = makeSim("FIFO");
    EXPECT_NE(lru.runSequence(seq), fifo.runSequence(seq));
}

// ------------------------------------------------------------ PLRU --

TEST(Plru, RequiresPowerOfTwo)
{
    EXPECT_THROW(makePolicy("PLRU", 12, &testRng()), PanicError);
}

TEST(Plru, MissStreamCyclesAllWays)
{
    // Consecutive misses must visit every way within assoc misses.
    auto sim = makeSim("PLRU", 8);
    for (int b = 0; b < 8; ++b)
        sim.access(b);
    // 8 fresh blocks evict all 8 previous ones.
    for (int b = 8; b < 16; ++b)
        sim.access(b);
    for (int b = 0; b < 8; ++b)
        EXPECT_FALSE(sim.access(100 + b) && false); // placeholder
    auto sim2 = makeSim("PLRU", 8);
    for (int b = 0; b < 8; ++b)
        sim2.access(b);
    for (int b = 8; b < 16; ++b)
        sim2.access(b);
    for (int b = 0; b < 8; ++b)
        EXPECT_FALSE(sim2.access(b)) << "block " << b << " survived";
}

TEST(Plru, ProtectsRecentlyTouchedPath)
{
    auto sim = makeSim("PLRU", 4);
    for (int b = 0; b < 4; ++b)
        sim.access(b);
    sim.access(0);
    sim.access(4); // one miss: must not evict 0 (just touched)
    EXPECT_TRUE(sim.access(0));
}

// ------------------------------------------------------------- MRU --

TEST(Mru, PaperSemantics)
{
    // §VI-B2: access clears the line's bit; when the last set bit is
    // cleared all other bits are set; a miss replaces the leftmost line
    // whose bit is set.
    auto policy = makePolicy("MRU", 4, &testRng());
    std::vector<bool> valid(4, false);
    // Fill ways 0..3.
    for (unsigned w = 0; w < 4; ++w) {
        EXPECT_EQ(policy->insertWay(valid), w);
        valid[w] = true;
        policy->onInsert(w, valid);
    }
    // bits: 0 -> last-set rule fired at way 3: bits = 1110 with way3=0.
    EXPECT_EQ(policy->debugState(), "1110");
    // Miss: replace leftmost set bit = way 0.
    EXPECT_EQ(policy->insertWay(valid), 0u);
}

TEST(Mru, SandyBridgeVariantSetsAllBitsWhileFilling)
{
    auto policy = makePolicy("MRU_SBV", 4, &testRng());
    std::vector<bool> valid(4, false);
    for (unsigned w = 0; w < 3; ++w) {
        policy->insertWay(valid);
        valid[w] = true;
        policy->onInsert(w, valid);
        // Not yet full: all bits stay set (Table I footnote).
        EXPECT_EQ(policy->debugState(), "1111");
    }
}

TEST(Mru, VariantsAreDistinguishable)
{
    // At least one sequence separates MRU from MRU_SBV.
    Rng rng(5);
    bool differ = false;
    for (int trial = 0; trial < 50 && !differ; ++trial) {
        std::vector<cachetools::SeqAccess> seq;
        seq.push_back({-1, false, true});
        for (int k = 0; k < 20; ++k)
            seq.push_back({static_cast<int>(rng.nextBelow(6)), true,
                           false});
        differ = makeSim("MRU").runSequence(seq) !=
                 makeSim("MRU_SBV").runSequence(seq);
    }
    EXPECT_TRUE(differ);
}

// ------------------------------------------------------------ QLRU --

TEST(QlruSpec, NameFormatting)
{
    QlruSpec spec;
    spec.hitX = 1;
    spec.hitY = 1;
    spec.insertAge = 1;
    spec.rVariant = 0;
    spec.uVariant = 0;
    EXPECT_EQ(spec.name(), "QLRU_H11_M1_R0_U0");
    spec.probDenom = 16;
    spec.rVariant = 1;
    spec.uVariant = 2;
    EXPECT_EQ(spec.name(), "QLRU_H11_MR161_R1_U2");
    spec.umo = true;
    EXPECT_EQ(spec.name(), "QLRU_H11_MR161_R1_U2_UMO");
}

TEST(QlruSpec, PaperPolicyNames)
{
    // The names the paper uses for SRRIP-HP and BRRIP (§VI-B2).
    auto srrip = QlruSpec::parse("QLRU_H00_M2_R0_U0_UMO");
    ASSERT_TRUE(srrip.has_value());
    EXPECT_EQ(srrip->hitX, 0u);
    EXPECT_EQ(srrip->insertAge, 2u);
    EXPECT_TRUE(srrip->umo);
    auto brrip = QlruSpec::parse("QLRU_H00_MR22_R0_U0_UMO");
    ASSERT_TRUE(brrip.has_value());
    EXPECT_EQ(brrip->probDenom, 2u);
    EXPECT_EQ(brrip->insertAge, 2u);
}

TEST(QlruSpec, ParseRejectsInvalid)
{
    EXPECT_FALSE(QlruSpec::parse("LRU").has_value());
    EXPECT_FALSE(QlruSpec::parse("QLRU_H31_M1_R0_U0").has_value());
    EXPECT_FALSE(QlruSpec::parse("QLRU_H11_M5_R0_U0").has_value());
    EXPECT_FALSE(QlruSpec::parse("QLRU_H11_M1_R3_U0").has_value());
    EXPECT_FALSE(QlruSpec::parse("QLRU_H11_M1_R0_U9").has_value());
    EXPECT_FALSE(QlruSpec::parse("QLRU_H11_M1_R0_U0_XYZ").has_value());
}

TEST(QlruSpec, R0CannotCombineWithU2U3)
{
    // §VI-B2: "not all combinations are possible".
    QlruSpec spec;
    spec.rVariant = 0;
    spec.uVariant = 2;
    EXPECT_FALSE(spec.isValid());
    spec.uVariant = 3;
    EXPECT_FALSE(spec.isValid());
    spec.rVariant = 1;
    EXPECT_TRUE(spec.isValid());
}

TEST(QlruSpec, ParseFormatRoundTripAllVariants)
{
    for (const auto &spec : allQlruSpecs()) {
        auto parsed = QlruSpec::parse(spec.name());
        ASSERT_TRUE(parsed.has_value()) << spec.name();
        EXPECT_EQ(*parsed, spec) << spec.name();
    }
}

TEST(Qlru, U0NormalizationAfterInsert)
{
    // §VI-B2, U0: if no block has age 3 after an access, all ages are
    // increased by 3-M. The very first M0 insertion is therefore
    // immediately promoted to age 3; once an age-3 block exists,
    // further insertions keep their insertion age.
    auto spec = QlruSpec::parse("QLRU_H00_M0_R1_U0").value();
    Rng rng(3);
    QlruPolicy policy(4, spec, &rng);
    std::vector<bool> valid(4, false);
    policy.insertWay(valid);
    valid[0] = true;
    policy.onInsert(0, valid);
    EXPECT_EQ(policy.ages()[0], 3); // 0 + (3 - 0)
    policy.insertWay(valid);
    valid[1] = true;
    policy.onInsert(1, valid);
    EXPECT_EQ(policy.ages()[1], 0); // age-3 block exists: no update
}

TEST(Qlru, InsertionAgeChangesEvictionOrder)
{
    // M1 vs M3 insertion is observable through hit counts.
    auto p_m1 = QlruSpec::parse("QLRU_H00_M1_R1_U0").value();
    auto p_m3 = QlruSpec::parse("QLRU_H00_M3_R1_U0").value();
    Rng rng(3);
    Rng seq_rng(23);
    bool differ = false;
    for (int trial = 0; trial < 60 && !differ; ++trial) {
        std::vector<cachetools::SeqAccess> seq;
        seq.push_back({-1, false, true});
        for (int k = 0; k < 24; ++k)
            seq.push_back({static_cast<int>(seq_rng.nextBelow(6)), true,
                           false});
        PolicySim a(std::make_unique<QlruPolicy>(4, p_m1, &rng));
        PolicySim b(std::make_unique<QlruPolicy>(4, p_m3, &rng));
        differ = a.runSequence(seq) != b.runSequence(seq);
    }
    EXPECT_TRUE(differ);
}

TEST(Qlru, R2InsertsRightmostWhileFilling)
{
    auto spec = QlruSpec::parse("QLRU_H00_M1_R2_U1").value();
    Rng rng(3);
    QlruPolicy policy(4, spec, &rng);
    std::vector<bool> valid(4, false);
    EXPECT_EQ(policy.insertWay(valid), 3u);
    valid[3] = true;
    policy.onInsert(3, valid);
    EXPECT_EQ(policy.insertWay(valid), 2u);
}

TEST(Qlru, HitPromotionFunction)
{
    auto spec = QlruSpec::parse("QLRU_H21_M3_R1_U0").value();
    Rng rng(3);
    QlruPolicy policy(2, spec, &rng);
    std::vector<bool> valid(2, false);
    // Fill both ways with age 3 so the normalization step stays
    // inactive while we exercise the promotion path on way 0.
    for (unsigned w = 0; w < 2; ++w) {
        policy.insertWay(valid);
        valid[w] = true;
        policy.onInsert(w, valid);
        EXPECT_EQ(policy.ages()[w], 3); // M3 insertion
    }
    policy.onHit(0, valid); // H2y: age 3 -> 2
    EXPECT_EQ(policy.ages()[0], 2);
    policy.onHit(0, valid); // age 2 -> y = 1
    EXPECT_EQ(policy.ages()[0], 1);
    policy.onHit(0, valid); // age 1 -> 0
    EXPECT_EQ(policy.ages()[0], 0);
}

TEST(Qlru, UmoDelaysAgingToMissTime)
{
    // Non-UMO updates after every access; UMO only before a
    // replacement. Distinguishable through hit counts.
    auto spec_now = QlruSpec::parse("QLRU_H00_M1_R1_U0").value();
    auto spec_umo = QlruSpec::parse("QLRU_H00_M1_R1_U0_UMO").value();
    Rng rng(3);
    bool differ = false;
    Rng seq_rng(17);
    for (int trial = 0; trial < 60 && !differ; ++trial) {
        std::vector<cachetools::SeqAccess> seq;
        seq.push_back({-1, false, true});
        for (int k = 0; k < 24; ++k)
            seq.push_back({static_cast<int>(seq_rng.nextBelow(6)), true,
                           false});
        PolicySim a(std::make_unique<QlruPolicy>(4, spec_now, &rng));
        PolicySim b(std::make_unique<QlruPolicy>(4, spec_umo, &rng));
        differ = a.runSequence(seq) != b.runSequence(seq);
    }
    EXPECT_TRUE(differ);
}

TEST(Qlru, ProbabilisticInsertionRate)
{
    // MR161: insert with age 1 in 1/16 of the cases, age 3 otherwise
    // (§VI-D).
    auto spec = QlruSpec::parse("QLRU_H11_MR161_R1_U2").value();
    Rng rng(77);
    int young = 0;
    constexpr int kTrials = 4000;
    for (int i = 0; i < kTrials; ++i) {
        QlruPolicy policy(4, spec, &rng);
        std::vector<bool> valid(4, false);
        unsigned w = policy.insertWay(valid);
        valid[w] = true;
        policy.onInsert(w, valid);
        if (policy.ages()[w] != 3)
            ++young;
    }
    EXPECT_NEAR(young, kTrials / 16.0, 60);
}

TEST(Qlru, AllSpecsCountMatchesParameterSpace)
{
    // 3*2 hit functions x 4 insertion ages x 3 R x 4 U x 2 UMO, minus
    // the invalid R0+U2/U3 combinations.
    unsigned total = 3 * 2 * 4 * 3 * 4 * 2;
    unsigned invalid = 3 * 2 * 4 * 1 * 2 * 2;
    EXPECT_EQ(allQlruSpecs().size(), total - invalid);
}

// ------------------------------------------ cross-policy properties --

class PolicyProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PolicyProperty, InsertedBlockIsResident)
{
    auto sim = makeSim(GetParam(), 8);
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        int b = static_cast<int>(rng.nextBelow(12));
        sim.access(b);
        EXPECT_TRUE(sim.access(b)) << GetParam() << " lost block " << b;
    }
}

TEST_P(PolicyProperty, NoMissWhenWorkingSetFits)
{
    auto sim = makeSim(GetParam(), 8);
    for (int b = 0; b < 8; ++b)
        sim.access(b);
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        int b = static_cast<int>(rng.nextBelow(8));
        EXPECT_TRUE(sim.access(b)) << GetParam();
    }
}

TEST_P(PolicyProperty, FlushForgetsEverything)
{
    auto sim = makeSim(GetParam(), 8);
    for (int b = 0; b < 8; ++b)
        sim.access(b);
    sim.flush();
    for (int b = 0; b < 8; ++b)
        EXPECT_FALSE(sim.access(b)) << GetParam();
}

TEST_P(PolicyProperty, DeterministicReplay)
{
    std::string name(GetParam());
    if (name == "RANDOM" || name.find("MR") != std::string::npos)
        GTEST_SKIP() << "policy is intentionally nondeterministic";
    Rng rng(3);
    std::vector<cachetools::SeqAccess> seq;
    seq.push_back({-1, false, true});
    for (int k = 0; k < 200; ++k)
        seq.push_back({static_cast<int>(rng.nextBelow(12)), true, false});
    auto a = makeSim(GetParam(), 8).runSequence(seq);
    auto b = makeSim(GetParam(), 8).runSequence(seq);
    EXPECT_EQ(a, b) << GetParam();
}

TEST_P(PolicyProperty, CloneIsIndependent)
{
    auto policy = makePolicy(GetParam(), 8, &testRng());
    std::vector<bool> valid(8, true);
    policy->reset();
    auto copy = policy->clone();
    // Mutate the original; the clone must keep its state.
    std::string before = copy->debugState();
    for (int i = 0; i < 16; ++i)
        policy->onHit(static_cast<unsigned>(i % 8), valid);
    EXPECT_EQ(copy->debugState(), before) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values("LRU", "FIFO", "PLRU", "MRU", "MRU_SBV", "RANDOM",
                      "QLRU_H11_M1_R0_U0", "QLRU_H00_M1_R2_U1",
                      "QLRU_H00_M1_R0_U1", "QLRU_H11_M1_R1_U2",
                      "QLRU_H11_MR161_R1_U2", "QLRU_H00_M2_R0_U0_UMO",
                      "QLRU_H21_M3_R0_U0_UMO"));

/** Every meaningful QLRU variant satisfies the residency property. */
class QlruVariantProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(QlruVariantProperty, InsertedBlockResidentAndDeterministic)
{
    auto specs = allQlruSpecs();
    auto spec = specs[static_cast<std::size_t>(GetParam()) %
                      specs.size()];
    Rng rng(4);
    PolicySim sim(std::make_unique<QlruPolicy>(8, spec, &rng));
    Rng seq_rng(5);
    for (int i = 0; i < 200; ++i) {
        int b = static_cast<int>(seq_rng.nextBelow(12));
        sim.access(b);
        EXPECT_TRUE(sim.access(b)) << spec.name();
    }
}

INSTANTIATE_TEST_SUITE_P(SampledVariants, QlruVariantProperty,
                         ::testing::Range(0, 384, 7));

TEST(Factory, UnknownPolicyIsFatal)
{
    Rng rng(1);
    EXPECT_THROW(makePolicy("NOT_A_POLICY", 8, &rng), FatalError);
}

} // namespace
} // namespace nb::cache
