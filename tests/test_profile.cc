/**
 * @file
 * Tests for the machine-profile subsystem: plan structure, the
 * campaign-backed builder against ground truth, failure degradation,
 * serialization round-trips, and profile diffing.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "profile/build.hh"
#include "profile/profile.hh"

namespace nb::profile
{
namespace
{

/** Reduced experiment sizing so one build stays test-sized. */
ProfileOptions
smallOptions(const std::string &uarch = "Skylake")
{
    ProfileOptions opt;
    opt.session.uarch = uarch;
    opt.maxAssoc = 18;
    opt.policySequences = 10;
    opt.tlbMaxPages = 512;
    opt.duelingScan = false;
    return opt;
}

/** One small profile per uarch, built once and shared by the tests
 *  (the campaign itself is deterministic, so sharing is safe). */
const ProfileBuild &
cachedBuild(const std::string &uarch)
{
    static std::map<std::string, ProfileBuild> cache;
    auto it = cache.find(uarch);
    if (it == cache.end()) {
        Engine engine;
        ProfileOptions opt = smallOptions(uarch);
        opt.jobs = 2;
        it = cache.emplace(uarch,
                           buildMachineProfile(engine, opt)).first;
    }
    return it->second;
}

// ---------------------------------------------------------- planning --

TEST(ProfilePlan, StructureCoversEverySection)
{
    ProfilePlan plan = planMachineProfile(smallOptions());
    ASSERT_EQ(plan.levels.size(), 3u);
    EXPECT_GT(plan.r14Size, 0u);
    EXPECT_TRUE(plan.disablePrefetchers);
    for (const auto &lp : plan.levels) {
        EXPECT_TRUE(lp.error.empty()) << lp.name << ": " << lp.error;
        EXPECT_FALSE(lp.setsHypotheses.empty());
        EXPECT_FALSE(lp.lineStrides.empty());
        EXPECT_EQ(lp.assoc.maxAssoc, 18u);
        EXPECT_EQ(lp.policy.sequences.size(), 10u);
        EXPECT_GT(lp.latencyRingLines, 0u);
    }
    ASSERT_TRUE(plan.tlb.has_value());
    EXPECT_FALSE(plan.tlb->ladder.empty());
    EXPECT_FALSE(plan.dueling.has_value());
    // The flat spec list covers every sub-range.
    const auto &last = plan.levels.back();
    EXPECT_GE(plan.specs.size(),
              last.policyFirst + 2 * last.policy.sequences.size());
    EXPECT_EQ(plan.specs.size(),
              plan.tlbFirst + 3 * plan.tlb->ladder.size());
}

TEST(ProfilePlan, PolicyPairsSurviveDedup)
{
    // Every policy sequence plans a Min/Max spec pair whose aggregate
    // differs; campaign dedup must never collapse the pair (it is the
    // determinism check).
    ProfilePlan plan = planMachineProfile(smallOptions());
    const auto &lp = plan.levels.front();
    for (std::size_t s = 0; s < lp.policy.sequences.size(); ++s) {
        const auto &lo = plan.specs[lp.policyFirst + 2 * s];
        const auto &hi = plan.specs[lp.policyFirst + 2 * s + 1];
        EXPECT_NE(specCanonicalKey(lo), specCanonicalKey(hi));
    }
}

TEST(ProfilePlan, UserModePlansNothingButExplains)
{
    ProfileOptions opt = smallOptions();
    opt.session.mode = core::Mode::User;
    ProfilePlan plan = planMachineProfile(opt);
    EXPECT_TRUE(plan.specs.empty());
    for (const auto &lp : plan.levels)
        EXPECT_FALSE(lp.error.empty());
    EXPECT_FALSE(plan.tlbError.empty());

    Engine engine;
    ProfileBuild build = buildMachineProfile(engine, opt);
    EXPECT_FALSE(build.profile.complete());
    EXPECT_EQ(build.profile.errorCount(), 4u); // 3 levels + TLB
    EXPECT_EQ(build.profile.mode, "user");
}

// ----------------------------------------------------- ground truth --

TEST(ProfileBuild, SkylakeMatchesConfiguredGeometry)
{
    const MachineProfile &profile = cachedBuild("Skylake").profile;
    EXPECT_TRUE(profile.complete()) << profile.format();
    ASSERT_EQ(profile.levels.size(), 3u);

    const CacheLevelProfile *l1 = profile.find("L1");
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l1->sets, 64u);
    EXPECT_EQ(l1->assoc, 8u);
    EXPECT_EQ(l1->lineSize, 64u);
    EXPECT_EQ(l1->sizeKb, 32.0);
    EXPECT_NEAR(l1->loadLatency, 4.0, 1.0);
    EXPECT_EQ(l1->policy(), "PLRU"); // Table I: every L1 is PLRU

    const CacheLevelProfile *l2 = profile.find("L2");
    ASSERT_NE(l2, nullptr);
    EXPECT_EQ(l2->sets, 1024u);
    EXPECT_EQ(l2->assoc, 4u);
    EXPECT_EQ(l2->sizeKb, 256.0);
    EXPECT_NEAR(l2->loadLatency, 12.0, 1.0);
    // Table I: Skylake L2 = QLRU_H00_M1_R2_U1. A reduced sequence
    // count may leave equivalent QLRU variants standing, but the true
    // policy must be among them.
    EXPECT_TRUE(l2->policyDeterministic);
    EXPECT_NE(std::find(l2->policyMatches.begin(),
                        l2->policyMatches.end(),
                        std::string("QLRU_H00_M1_R2_U1")),
              l2->policyMatches.end());

    const CacheLevelProfile *l3 = profile.find("L3");
    ASSERT_NE(l3, nullptr);
    EXPECT_EQ(l3->sets, 2048u);
    EXPECT_EQ(l3->assoc, 16u);
    EXPECT_EQ(l3->slices, 2u);
    EXPECT_EQ(l3->sizeKb, 4096.0);
    EXPECT_NEAR(l3->loadLatency, 42.0, 2.0);
    EXPECT_NE(std::find(l3->policyMatches.begin(),
                        l3->policyMatches.end(),
                        std::string("QLRU_H11_M1_R0_U0")),
              l3->policyMatches.end());
}

TEST(ProfileBuild, TlbMatchesSerialTool)
{
    // The profile's TLB numbers come from the same plan/decode the
    // serial measureTlb() now uses, bounded at the test's maxPages.
    const MachineProfile &profile = cachedBuild("Skylake").profile;
    ASSERT_TRUE(profile.tlb.measured);
    EXPECT_TRUE(profile.tlb.ok()) << profile.tlb.error;
    EXPECT_EQ(profile.tlb.dtlbEntries, 64u);
    // maxPages 512 < the true STLB capacity: the sweep saturates at
    // its bound, exactly like a bounded serial search.
    EXPECT_EQ(profile.tlb.stlbEntries, 512u);

    Engine engine;
    auto session = engine.session(SessionOptions{});
    auto serial = cachetools::measureTlb(session, 512);
    EXPECT_EQ(profile.tlb.dtlbEntries, serial.dtlbEntries);
    EXPECT_EQ(profile.tlb.stlbEntries, serial.stlbEntries);
}

TEST(ProfileBuild, NehalemGroundTruth)
{
    const MachineProfile &profile = cachedBuild("Nehalem").profile;
    EXPECT_TRUE(profile.complete()) << profile.format();
    const CacheLevelProfile *l3 = profile.find("L3");
    ASSERT_NE(l3, nullptr);
    EXPECT_EQ(l3->sets, 8192u);
    EXPECT_EQ(l3->assoc, 16u);
    EXPECT_EQ(l3->slices, 1u);
    EXPECT_EQ(l3->sizeKb, 8192.0);
    EXPECT_EQ(l3->policy(), "MRU"); // Table I
    const CacheLevelProfile *l2 = profile.find("L2");
    ASSERT_NE(l2, nullptr);
    EXPECT_EQ(l2->assoc, 8u);
    EXPECT_EQ(l2->policy(), "PLRU");
}

TEST(ProfileBuild, ZenDegradesToErroredSections)
{
    // §VI-D: no prefetcher control on AMD -- cache analysis must
    // report errors, not die.
    Engine engine;
    ProfileOptions opt = smallOptions("Zen");
    ProfileBuild build = buildMachineProfile(engine, opt);
    EXPECT_FALSE(build.profile.complete());
    for (const auto &level : build.profile.levels) {
        EXPECT_FALSE(level.ok());
        EXPECT_NE(level.error.find("prefetchers"), std::string::npos);
    }
}

// ------------------------------------------------- layout invariance --

TEST(ProfileBuild, JobsOneAndFourBitIdentical)
{
    ProfileOptions opt = smallOptions();
    opt.tlbMaxPages = 128;
    opt.policySequences = 4;
    opt.maxAssoc = 10;

    Engine e1;
    opt.jobs = 1;
    ProfileBuild b1 = buildMachineProfile(e1, opt);
    Engine e4;
    opt.jobs = 4;
    ProfileBuild b4 = buildMachineProfile(e4, opt);

    EXPECT_EQ(b1.profile.toJson(), b4.profile.toJson());
    EXPECT_TRUE(diffProfiles(b1.profile, b4.profile).empty());
}

// ------------------------------------------------------ degradation --

TEST(ProfileDecode, SabotagedSpecsErrorOneSectionOnly)
{
    ProfileOptions opt = smallOptions();
    opt.tlbMaxPages = 128;
    opt.policySequences = 4;
    opt.maxAssoc = 8;
    ProfilePlan plan = planMachineProfile(opt);

    // Sabotage one L2 associativity spec and one L2 policy spec:
    // nMeasurements = 0 is rejected by validateSpec as InvalidSpec.
    const auto &l2 = plan.levels[1];
    plan.specs[l2.assocFirst + 2].nMeasurements = 0;
    plan.specs[l2.policyFirst].nMeasurements = 0;

    Engine engine;
    CampaignOptions campaign_opt;
    campaign_opt.freshMachinePerSpec = true;
    campaign_opt.jobs = 2;
    campaign_opt.machineSetup = [&plan](core::Runner &runner) {
        prepareProfileMachine(runner, plan);
    };
    auto campaign = engine.runCampaign(plan.specs, campaign_opt);
    MachineProfile profile =
        decodeMachineProfile(plan, campaign.outcomes);

    const CacheLevelProfile *lvl2 = profile.find("L2");
    ASSERT_NE(lvl2, nullptr);
    EXPECT_FALSE(lvl2->ok());
    EXPECT_NE(lvl2->error.find("assoc"), std::string::npos);
    EXPECT_NE(lvl2->error.find("policy"), std::string::npos);
    // The associativity ladder still reports its lower bound.
    EXPECT_EQ(lvl2->assoc, 2u);
    // Other sections are untouched.
    EXPECT_TRUE(profile.find("L1")->ok());
    EXPECT_TRUE(profile.find("L3")->ok());
    EXPECT_TRUE(profile.tlb.ok());
}

// ------------------------------------------------------ round-trips --

TEST(ProfileSerialization, JsonRoundTripIsExact)
{
    const MachineProfile &profile = cachedBuild("Skylake").profile;
    MachineProfile back = MachineProfile::fromJson(profile.toJson());
    EXPECT_EQ(back.toJson(), profile.toJson());
    EXPECT_TRUE(diffProfiles(profile, back).empty());
}

TEST(ProfileSerialization, CsvRoundTripIsExact)
{
    const MachineProfile &profile = cachedBuild("Skylake").profile;
    MachineProfile back = MachineProfile::fromCsv(profile.toCsv());
    EXPECT_EQ(back.toCsv(), profile.toCsv());
    EXPECT_TRUE(diffProfiles(profile, back).empty());
    // The two formats agree with each other too.
    EXPECT_EQ(MachineProfile::fromJson(profile.toJson()).toCsv(),
              profile.toCsv());
}

TEST(ProfileSerialization, ErrorsSurviveRoundTrip)
{
    Engine engine;
    ProfileOptions opt = smallOptions("Zen");
    MachineProfile profile = buildMachineProfile(engine, opt).profile;
    ASSERT_FALSE(profile.complete());
    EXPECT_EQ(MachineProfile::fromJson(profile.toJson()).toJson(),
              profile.toJson());
    EXPECT_EQ(MachineProfile::fromCsv(profile.toCsv()).toCsv(),
              profile.toCsv());
}

TEST(ProfileSerialization, LoadAutoDetectsFormat)
{
    const MachineProfile &profile = cachedBuild("Skylake").profile;
    std::string json_path = testing::TempDir() + "profile_ad.json";
    std::string csv_path = testing::TempDir() + "profile_ad.csv";
    std::ofstream(json_path) << profile.toJson();
    std::ofstream(csv_path) << profile.toCsv();
    EXPECT_EQ(MachineProfile::load(json_path).toJson(),
              profile.toJson());
    EXPECT_EQ(MachineProfile::load(csv_path).toJson(),
              profile.toJson());
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
    EXPECT_THROW(MachineProfile::load("/nonexistent/profile.json"),
                 FatalError);
}

// ------------------------------------------------------------- diff --

TEST(ProfileDiff, ReportsEveryKind)
{
    MachineProfile a;
    a.uarch = "A";
    a.mode = "kernel";
    CacheLevelProfile l1;
    l1.level = "L1";
    l1.sets = 64;
    l1.assoc = 8;
    l1.lineSize = 64;
    l1.sizeKb = 32;
    l1.loadLatency = 4.0;
    l1.policyMatches = {"PLRU"};
    a.levels.push_back(l1);
    CacheLevelProfile l2 = l1;
    l2.level = "L2";
    a.levels.push_back(l2);
    a.tlb.measured = true;
    a.tlb.dtlbEntries = 64;
    a.dueling.scanned = true;
    a.dueling.policyA = "X";
    a.dueling.policyB = "Y";
    a.dueling.ranges = {{0, 512, 575, "A"}};

    MachineProfile b = a;
    b.uarch = "B";
    b.levels[0].assoc = 4;              // geometry
    b.levels[0].loadLatency = 7.0;      // latency
    b.levels[0].policyMatches = {"LRU"}; // policy
    b.levels[1].error = "boom";         // status
    b.tlb.dtlbEntries = 48;             // tlb
    b.dueling.ranges = {{0, 768, 831, "B"}}; // dueling
    CacheLevelProfile l3 = l1;
    l3.level = "L3";
    b.levels.push_back(l3);             // added

    auto diff = diffProfiles(a, b);
    auto has = [&](ProfileDiffEntry::Kind kind,
                   const std::string &section) {
        for (const auto &entry : diff.entries) {
            if (entry.kind == kind && entry.section == section)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::GeometryChanged, "L1"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::LatencyChanged, "L1"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::PolicyChanged, "L1"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::StatusChanged, "L2"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::TlbChanged, "tlb"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::DuelingChanged, "dueling"));
    EXPECT_TRUE(has(ProfileDiffEntry::Kind::Added, "L3"));

    // Removed: diff the other way round.
    auto reverse = diffProfiles(b, a);
    bool removed = false;
    for (const auto &entry : reverse.entries)
        removed |= entry.kind == ProfileDiffEntry::Kind::Removed &&
                   entry.section == "L3";
    EXPECT_TRUE(removed);
}

TEST(ProfileDiff, LatencyTolerance)
{
    MachineProfile a;
    CacheLevelProfile l1;
    l1.level = "L1";
    l1.sets = 64;
    l1.assoc = 8;
    l1.lineSize = 64;
    l1.loadLatency = 4.0;
    a.levels.push_back(l1);
    MachineProfile b = a;
    b.levels[0].loadLatency = 4.3;
    EXPECT_TRUE(diffProfiles(a, b).empty()); // within 0.5 cycles
    b.levels[0].loadLatency = 5.0;
    EXPECT_FALSE(diffProfiles(a, b).empty());
}

TEST(ProfileDiff, CrossUarchIsNonEmptyAndReadable)
{
    const MachineProfile &skl = cachedBuild("Skylake").profile;
    const MachineProfile &nhm = cachedBuild("Nehalem").profile;
    auto diff = diffProfiles(skl, nhm);
    ASSERT_FALSE(diff.empty());
    std::string text = diff.format();
    // Human-readable entries: "L2: assoc 4 -> 8" etc.
    EXPECT_NE(text.find("L2: assoc 4 -> 8"), std::string::npos) << text;
    EXPECT_NE(text.find("->"), std::string::npos);
}

// ---------------------------------------------------------- dueling --

TEST(ProfileBuild, IvyBridgeDuelingLeadersThroughCampaign)
{
    // §VI-D: IvB dedicates sets 512-575 (policy A) and 768-831
    // (policy B) in every slice. The planned scan probes a coarse
    // grid; every dedicated range it reports must fall inside a true
    // leader band, and both bands must be found in every slice.
    Engine engine;
    ProfileOptions opt = smallOptions("IvyBridge");
    opt.jobs = 4;
    opt.maxAssoc = 14;
    opt.policySequences = 4;
    opt.tlbMaxPages = 128;
    opt.duelingScan = true;
    opt.dueling.setLo = 496;
    opt.dueling.setHi = 847;
    opt.dueling.stride = 32;
    ProfileBuild build = buildMachineProfile(engine, opt);
    const DuelingProfile &duel = build.profile.dueling;
    ASSERT_TRUE(duel.scanned);
    EXPECT_TRUE(duel.ok()) << duel.error;
    EXPECT_EQ(duel.policyA, "QLRU_H11_M1_R1_U2");

    unsigned slices = 4;
    std::vector<bool> found_a(slices, false), found_b(slices, false);
    for (const auto &range : duel.ranges) {
        ASSERT_LT(range.slice, slices);
        if (range.role == "A") {
            EXPECT_GE(range.setLo, 512u);
            EXPECT_LE(range.setHi, 575u);
            found_a[range.slice] = true;
        } else {
            EXPECT_GE(range.setLo, 768u);
            EXPECT_LE(range.setHi, 831u);
            found_b[range.slice] = true;
        }
    }
    for (unsigned s = 0; s < slices; ++s) {
        EXPECT_TRUE(found_a[s]) << "slice " << s;
        EXPECT_TRUE(found_b[s]) << "slice " << s;
    }

    // The follower L3 runs the duel winner's probabilistic policy:
    // the profile's L3 policy verdict must flag non-determinism.
    const CacheLevelProfile *l3 = build.profile.find("L3");
    ASSERT_NE(l3, nullptr);
    EXPECT_FALSE(l3->policyDeterministic);
}

} // namespace
} // namespace nb::profile
