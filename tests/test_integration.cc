/**
 * @file
 * Cross-module integration tests: full paper-experiment slices run end
 * to end on small configurations.
 */

#include <gtest/gtest.h>

#include "cachetools/cacheseq.hh"
#include "cachetools/infer.hh"
#include "core/engine.hh"
#include "core/module.hh"
#include "uops/characterize.hh"
#include "x86/assembler.hh"

namespace nb
{
namespace
{

using namespace core;
using namespace cachetools;

TEST(Integration, TableOneRowSkylake)
{
    // One full Table I row, produced exactly as the bench does it.
    Engine engine;
    SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = Mode::Kernel;
    Session session = engine.session(opt);

    // L1: permutation tool.
    {
        CacheSeqOptions co;
        co.level = CacheLevel::L1;
        co.set = 9;
        CacheSeq cs(session, co);
        HardwareSetProbe probe(cs, 8);
        Rng rng(1);
        EXPECT_EQ(identifyPermutationPolicy(probe, &rng).value_or("?"),
                  "PLRU");
    }
    // L2: random-sequence tool.
    {
        CacheSeqOptions co;
        co.level = CacheLevel::L2;
        co.set = 700;
        CacheSeq cs(session, co);
        HardwareSetProbe probe(cs, 4);
        Rng rng(2);
        auto id = identifyPolicy(probe, rng, 90);
        ASSERT_EQ(id.matches.size(), 1u);
        EXPECT_EQ(id.matches[0], "QLRU_H00_M1_R2_U1");
    }
    // L3: random-sequence tool; the paper-reported name must be among
    // the (observationally equivalent) matches.
    {
        CacheSeqOptions co;
        co.level = CacheLevel::L3;
        co.set = 1234;
        co.cbox = 0;
        CacheSeq cs(session, co);
        HardwareSetProbe probe(cs, 16);
        Rng rng(3);
        auto id = identifyPolicy(probe, rng, 70);
        EXPECT_TRUE(id.deterministic);
        EXPECT_NE(std::find(id.matches.begin(), id.matches.end(),
                            std::string("QLRU_H11_M1_R0_U0")),
                  id.matches.end());
    }
}

TEST(Integration, KernelFasterThanUserOnSameWork)
{
    // §III-K shape: the kernel version evaluates the same benchmark
    // with less total work than the user-space version.
    BenchmarkSpec spec;
    spec.asmCode = "nop";
    spec.unrollCount = 100;
    spec.nMeasurements = 10;
    spec.warmUpCount = 0;
    spec.config = CounterConfig::parseString(
        "0E.01 UOPS_ISSUED.ANY\nA1.01 P0\nA1.02 P1\nA1.04 P2\n");

    Engine engine;
    SessionOptions kopt;
    kopt.mode = Mode::Kernel;
    Session kernel = engine.session(kopt);
    Cycles kernel_cycles = kernel.runOrThrow(spec).lastRunCycles;

    SessionOptions uopt;
    uopt.mode = Mode::User;
    Session user = engine.session(uopt);
    Cycles user_cycles = user.runOrThrow(spec).lastRunCycles;

    EXPECT_LT(kernel_cycles, user_cycles);
}

TEST(Integration, SerializationComparison)
{
    // §IV-A1: LFENCE-based measurements are stable; unfenced and
    // CPUID-fenced ones show more variance.
    auto run_stddev = [](SerializeMode mode) {
        Engine engine;
        SessionOptions opt;
        opt.mode = Mode::Kernel;
        Session session = engine.session(opt);
        BenchmarkSpec spec;
        spec.asmCode = "imul RAX, RAX";
        spec.unrollCount = 20;
        spec.serialize = mode;
        spec.warmUpCount = 1;
        auto outcomes = session.runBatch(
            std::vector<BenchmarkSpec>(8, spec));
        std::vector<double> values;
        for (const auto &outcome : outcomes)
            values.push_back(outcome.resultOrThrow()["Core cycles"]);
        return stddev(values);
    };
    double sd_lfence = run_stddev(SerializeMode::Lfence);
    double sd_cpuid = run_stddev(SerializeMode::Cpuid);
    EXPECT_LT(sd_lfence, 0.05);
    EXPECT_GT(sd_cpuid, sd_lfence);
}

TEST(Integration, ModuleDrivesCacheExperiment)
{
    // Drive a §VI-style experiment purely through the kernel module's
    // virtual files, with magic markers in the code (§III-I).
    sim::Machine machine(uarch::getMicroArch("Skylake"), 42);
    NanoBenchModule module(machine);
    module.writeFile("/sys/nb/no_mem", "1");
    module.writeFile("/sys/nb/fixed_counters", "0");
    module.writeFile("/sys/nb/basic_mode", "1");
    module.writeFile("/sys/nb/unroll_count", "1");
    module.writeFile("/sys/nb/config",
                     "D1.01 MEM_LOAD_RETIRED.L1_HIT\n"
                     "D1.08 MEM_LOAD_RETIRED.L1_MISS\n");
    // Two misses outside the measurement, one measured hit.
    module.writeFile("/sys/nb/code",
                     "pfc_pause; mov RBX, [R14]; mov RBX, [R14+64]; "
                     "pfc_resume; mov RBX, [R14]");
    auto out = module.readFile("/proc/nanoBench");
    EXPECT_NE(out.find("MEM_LOAD_RETIRED.L1_HIT: 1.00"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("MEM_LOAD_RETIRED.L1_MISS: 0.00"),
              std::string::npos)
        << out;
}

TEST(Integration, UopsOnAllMicroarchitectures)
{
    // The characterizer runs on every modelled CPU (incl. AMD Zen,
    // which has no fixed counters but six programmable ones).
    Engine engine;
    for (const auto &name : {"Nehalem", "Haswell", "Skylake", "Zen"}) {
        SessionOptions opt;
        opt.uarch = name;
        opt.mode = Mode::Kernel;
        Session session = engine.session(opt);
        uops::Characterizer tool(session);
        auto r = tool.characterize(x86::assemble("add RAX, RBX")[0]);
        ASSERT_TRUE(r.latency.has_value()) << name;
        EXPECT_NEAR(*r.latency, 1.0, 0.1) << name;
    }
}

TEST(Integration, AdaptiveFollowerTracksDuel)
{
    // End-to-end: follower sets on IvyBridge change observable hit
    // counts when the duel flips (the mechanism behind §VI-C3).
    Engine engine;
    SessionOptions opt;
    opt.uarch = "IvyBridge";
    opt.mode = Mode::Kernel;
    Session session = engine.session(opt);
    auto &duel = session.machine().caches().duelState();

    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 100; // follower
    co.cbox = 0;
    co.repetitions = 4;
    CacheSeq cs(session, co);

    // A thrash-with-reuse sequence distinguishes M1 from MR161.
    auto seq = parseAccessSeq("<wbinvd> B0 B1 B2 B3 B4 B5 B6 B7 B8 B9 "
                              "B10 B11 B12 B0 B1 B2 B3 B4 B5 B6 B7 B8 "
                              "B9 B10 B11 B12");
    // Saturate towards A, then towards B, via direct leader misses.
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(cache::DuelRole::LeaderB);
    double hits_a_state = cs.run(seq);
    for (int i = 0; i < 2000; ++i)
        duel.recordMiss(cache::DuelRole::LeaderA);
    double hits_b_state = cs.run(seq);
    EXPECT_NE(hits_a_state, hits_b_state);
}

} // namespace
} // namespace nb
