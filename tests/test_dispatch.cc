/**
 * @file
 * Bit-identity of the threaded computed-goto executor
 * (Machine::execute) against the frozen switch-based reference path
 * (Machine::executeReference, src/sim/exec.cc).
 *
 * The threaded executor is only correct if it is indistinguishable
 * from the reference: identical ExecStats, architectural state
 * (GPRs, vector registers, flags), every PMU scalar total, AND the
 * time-resolved counter samples -- batching the PMU accounting must
 * not move any increment to a different cycle. Each test runs the
 * same predecoded program on two identically-seeded machines, one
 * per executor, and compares everything.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/machine.hh"
#include "x86/assembler.hh"

namespace nb::sim
{
namespace
{

using x86::assemble;
using x86::Reg;

std::unique_ptr<Machine>
makeMachine(bool kernel = true, bool interrupts = false)
{
    auto m =
        std::make_unique<Machine>(uarch::getMicroArch("Skylake"), 42);
    m->setPrivilege(kernel ? Privilege::Kernel : Privilege::User);
    m->setInterruptsEnabled(interrupts);
    for (Addr page = 0; page < 64; ++page) {
        m->memory().pageTable().mapPage(0x10000 + page * kPageSize,
                                        0x10000 + page * kPageSize);
    }
    return m;
}

/**
 * Execute @p prog through both executors on machines prepared by
 * @p setup (applied identically to both) and compare every
 * observable: ExecStats, GPRs, vector registers, flags, all scalar
 * event totals, and time-resolved fixed/programmable/MSR samples at
 * a sweep of cycles.
 */
void
expectParity(const Program &prog,
             const std::function<void(Machine &)> &setup = {},
             bool kernel = true, bool interrupts = false)
{
    auto threaded = makeMachine(kernel, interrupts);
    auto reference = makeMachine(kernel, interrupts);
    if (setup) {
        setup(*threaded);
        setup(*reference);
    }

    ExecStats st = threaded->execute(prog);
    ExecStats sr = reference->executeReference(prog);

    EXPECT_EQ(st.instructions, sr.instructions);
    EXPECT_EQ(st.uops, sr.uops);
    EXPECT_EQ(st.startCycle, sr.startCycle);
    EXPECT_EQ(st.endCycle, sr.endCycle);
    EXPECT_EQ(st.interrupts, sr.interrupts);

    EXPECT_EQ(threaded->arch().gpr, reference->arch().gpr);
    EXPECT_EQ(threaded->arch().vec, reference->arch().vec);
    EXPECT_EQ(threaded->arch().zf, reference->arch().zf);
    EXPECT_EQ(threaded->arch().cf, reference->arch().cf);
    EXPECT_EQ(threaded->arch().sf, reference->arch().sf);
    EXPECT_EQ(threaded->arch().of, reference->arch().of);

    for (unsigned e = 0; e < kNumEvents; ++e) {
        EXPECT_EQ(threaded->pmu().total(static_cast<EventId>(e)),
                  reference->pmu().total(static_cast<EventId>(e)))
            << "event " << e;
    }

    // Time-resolved identity: batched accounting must not shift any
    // logged increment to a different cycle. Sweep sample points past
    // the end so post-retirement plateaus compare too.
    for (Cycles c = 0; c <= sr.endCycle + 3; c += 3) {
        for (unsigned i = 0; i < 3; ++i) {
            EXPECT_EQ(threaded->pmu().readFixed(i, c),
                      reference->pmu().readFixed(i, c))
                << "fixed " << i << " at cycle " << c;
        }
        for (unsigned i = 0; i < threaded->pmu().numProg(); ++i) {
            EXPECT_EQ(threaded->pmu().readProg(i, c),
                      reference->pmu().readProg(i, c))
                << "prog " << i << " at cycle " << c;
        }
        EXPECT_EQ(threaded->pmu().aperf(c), reference->pmu().aperf(c));
        EXPECT_EQ(threaded->pmu().mperf(c), reference->pmu().mperf(c));
    }
}

void
expectParity(const std::string &asm_code,
             const std::function<void(Machine &)> &setup = {},
             bool kernel = true, bool interrupts = false)
{
    expectParity(Program::decode(uarch::getMicroArch("Skylake"),
                                 assemble(asm_code)),
                 setup, kernel, interrupts);
}

/** Configure all four Skylake programmable counters so UopsIssued /
 *  UopsExecuted / port events are logged -- the widest loggedMask the
 *  batching has to preserve cycle-exactly. */
void
configureCounters(Machine &m)
{
    m.pmu().configureProg(0, EventCode{0x0E, 0x01}); // UopsIssued
    m.pmu().configureProg(1, EventCode{0xB1, 0x01}); // UopsExecuted
    m.pmu().configureProg(2, EventCode{0xA1, 0x01}); // port 0
    m.pmu().configureProg(3, EventCode{0xC4, 0x00}); // branches
}

TEST(DispatchParity, AluMix)
{
    expectParity("mov RAX, 7; mov RBX, RAX; add RBX, 5; imul RBX, RBX; "
                 "sub RAX, 3; xor RCX, RCX; lea RDX, [RAX+RBX*4+8]; "
                 "shl RDX, 3; popcnt RSI, RDX; neg RAX; not RBX; "
                 "inc RCX; dec RDX; cmovz RDI, RAX; bswap RBX; "
                 "test RDX, RDX; setz AL");
}

TEST(DispatchParity, LoadsAndStores)
{
    expectParity("mov R14, 0x10000; mov RBX, 77; mov [R14], RBX; "
                 "mov RCX, [R14]; mov [R14+64], RCX; "
                 "mov R14, 0x10000; mov [R14], R14; mov R14, [R14]; "
                 "mov R14, [R14]; add RCX, [R14+64]; "
                 "mov RDX, 0x10400; mov [RDX], RCX; mov RSI, [RDX]");
}

TEST(DispatchParity, FencesAndSerialization)
{
    expectParity("mov RAX, 1; lfence; imul RAX, RAX; mfence; "
                 "add RAX, 2; sfence; imul RBX, RAX; lfence");
}

TEST(DispatchParity, CpuidSerialization)
{
    // CPUID consumes the machine RNG (variable latency and µop count,
    // §IV-A1); identical seeds must give identical streams through
    // both executors.
    expectParity("mov RAX, 3; cpuid; imul RBX, RBX; cpuid; "
                 "add RCX, 1; cpuid");
}

TEST(DispatchParity, BranchesCallsAndLoops)
{
    expectParity(
        "mov R15, 50; l: add RAX, 1; imul RBX, RBX; dec R15; jnz l; "
        "mov RAX, 1; call f; add RAX, 100; jmp done; "
        "f: add RAX, 10; ret; done: nop",
        [](Machine &m) {
            m.arch().writeGpr(Reg::RSP, 64, 0x10000 + 32 * kPageSize);
        });
}

TEST(DispatchParity, PfcMarkersPauseAndResume)
{
    expectParity("add RAX, 1; pfc_pause; add RAX, 1; imul RBX, RBX; "
                 "pfc_resume; add RAX, 1",
                 configureCounters);
}

TEST(DispatchParity, VectorOps)
{
    expectParity("pxor XMM1, XMM1; pxor XMM2, XMM2; paddd XMM1, XMM2; "
                 "movaps [0x10080], XMM1; movaps XMM3, [0x10080]; "
                 "addps XMM3, XMM1; mulps XMM3, XMM3; "
                 "vaddps YMM4, YMM3, YMM3");
}

TEST(DispatchParity, ConfiguredCountersTimeResolved)
{
    // The widest logged set: every programmable counter live, so
    // UopsIssued / UopsExecuted / port counts all take the immediate
    // (logged) path while the rest batch. Their interleaving must
    // stay cycle-exact.
    expectParity("mov R15, 30; l: add RAX, 1; imul RBX, RBX; "
                 "mov RCX, [R14]; dec R15; jnz l",
                 [](Machine &m) {
                     configureCounters(m);
                     m.arch().writeGpr(Reg::R14, 64, 0x10000);
                 });
}

TEST(DispatchParity, UserModeTimerInterrupts)
{
    // User mode with interrupts enabled: the interrupt points derive
    // from the machine RNG, so parity here proves the threaded loop
    // polls (and advances) the interrupt state exactly like the
    // reference.
    auto prog = Program::decode(
        uarch::getMicroArch("Skylake"),
        assemble("mov R15, 20000; l: add RAX, 1; dec R15; jnz l"));
    expectParity(prog, {}, /*kernel=*/false, /*interrupts=*/true);
}

TEST(DispatchParity, RepeatEncodedMatchesMaterialized)
{
    // A repeat-encoded block through the threaded executor must be
    // indistinguishable from the same body materialized N times --
    // and from the reference executor on either encoding.
    std::vector<Program::Segment> segments(1);
    segments[0].code = assemble("add RAX, 1; imul RBX, RBX");
    segments[0].repeat = 100;
    Program repeat_prog = Program::decode(
        uarch::getMicroArch("Skylake"), std::move(segments));

    std::vector<x86::Instruction> body =
        assemble("add RAX, 1; imul RBX, RBX");
    std::vector<x86::Instruction> unrolled;
    for (int i = 0; i < 100; ++i)
        unrolled.insert(unrolled.end(), body.begin(), body.end());
    Program materialized = Program::decode(
        uarch::getMicroArch("Skylake"), unrolled);

    expectParity(repeat_prog);
    expectParity(materialized);

    auto a = makeMachine();
    auto b = makeMachine();
    ExecStats sa = a->execute(repeat_prog);
    ExecStats sb = b->execute(materialized);
    EXPECT_EQ(sa.instructions, sb.instructions);
    EXPECT_EQ(sa.uops, sb.uops);
    EXPECT_EQ(sa.endCycle, sb.endCycle);
    EXPECT_EQ(a->arch().gpr, b->arch().gpr);
    for (unsigned e = 0; e < kNumEvents; ++e) {
        EXPECT_EQ(a->pmu().total(static_cast<EventId>(e)),
                  b->pmu().total(static_cast<EventId>(e)));
    }
}

TEST(DispatchParity, DeprecatedVectorShimStillExecutes)
{
    // The vector overload survives one release as a deprecated shim;
    // it must keep behaving like decode-then-execute.
    auto m = makeMachine();
    auto n = makeMachine();
    auto code = assemble("mov RAX, 5; add RAX, 3");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    ExecStats sm = m->execute(code);
#pragma GCC diagnostic pop
    ExecStats sn = n->execute(Program::decode(n->uarch(), code));
    EXPECT_EQ(sm.endCycle, sn.endCycle);
    EXPECT_EQ(m->arch().gpr, n->arch().gpr);
}

} // namespace
} // namespace nb::sim
