/**
 * @file
 * Unit tests for the common utilities (RNG, statistics, strings, bits).
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strings.hh"

namespace nb
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(7);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[rng.nextBelow(8)];
    for (int c : counts)
        EXPECT_GT(c, 800); // roughly uniform
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, OneInApproximatesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 16000; ++i)
        hits += rng.oneIn(16) ? 1 : 0;
    EXPECT_NEAR(hits, 1000, 150);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Stats, Minimum)
{
    EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
}

TEST(Stats, MedianOdd)
{
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Stats, MedianEven)
{
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, TrimmedMeanDropsOutliers)
{
    // 10 values; 20% trim drops 2 from each end.
    std::vector<double> v = {1000, -1000, 5, 5, 5, 5, 5, 5, 4, 6};
    EXPECT_DOUBLE_EQ(trimmedMean(v), 5.0);
}

TEST(Stats, TrimmedMeanKeepsAtLeastOne)
{
    EXPECT_DOUBLE_EQ(trimmedMean({42.0}), 42.0);
    EXPECT_DOUBLE_EQ(trimmedMean({1.0, 3.0}), 2.0);
}

TEST(Stats, TrimmedMeanSmallVectorsEqualPlainMean)
{
    // With n <= 4 a 20% trim rounds down to cutting nothing: the
    // trimmed mean must degrade to the plain mean, not misindex.
    EXPECT_DOUBLE_EQ(trimmedMean({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(trimmedMean({1.0, 2.0, 6.0}), 3.0);
    EXPECT_DOUBLE_EQ(trimmedMean({1.0, 2.0, 3.0, 6.0}), 3.0);
    // n == 5 is the first size that actually trims (one per end).
    EXPECT_DOUBLE_EQ(trimmedMean({-100.0, 2.0, 3.0, 4.0, 100.0}), 3.0);
}

TEST(Stats, RunningStatsSingleValue)
{
    RunningStats rs;
    rs.add(3.25);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.min(), 3.25);
    EXPECT_DOUBLE_EQ(rs.max(), 3.25);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.25);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, ParseAggregateNames)
{
    EXPECT_EQ(parseAggregate("min"), Aggregate::Minimum);
    EXPECT_EQ(parseAggregate("med"), Aggregate::Median);
    EXPECT_EQ(parseAggregate("avg"), Aggregate::TrimmedMean);
    EXPECT_EQ(parseAggregate("mean"), Aggregate::Mean);
    EXPECT_THROW(parseAggregate("bogus"), FatalError);
}

TEST(Stats, RunningStatsMatchesBatch)
{
    RunningStats rs;
    std::vector<double> v = {1.5, 2.5, 3.5, 10.0, -2.0};
    for (double x : v)
        rs.add(x);
    EXPECT_EQ(rs.count(), v.size());
    EXPECT_DOUBLE_EQ(rs.min(), -2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 10.0);
    EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(v), 1e-12);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWhitespace)
{
    auto parts = splitWhitespace("  mov   R14,  [R14]  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "mov");
}

TEST(Strings, CaseHelpers)
{
    EXPECT_EQ(toLower("MoV"), "mov");
    EXPECT_EQ(toUpper("r14"), "R14");
    EXPECT_TRUE(iequals("LFENCE", "lfence"));
    EXPECT_FALSE(iequals("LFENCE", "lfenc"));
}

TEST(Strings, ParseInt)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("0x10").value(), 16);
    EXPECT_FALSE(parseInt("4x2").has_value());
    EXPECT_FALSE(parseInt("").has_value());
}

TEST(Strings, ParseHex)
{
    EXPECT_EQ(parseHex("A1").value(), 0xA1u);
    EXPECT_EQ(parseHex("0x3C").value(), 0x3Cu);
    EXPECT_FALSE(parseHex("zz").has_value());
}

TEST(Bits, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(Bits, BitExtraction)
{
    EXPECT_EQ(bits(0xABCD, 15, 8), 0xABu);
    EXPECT_EQ(bit(0x8, 3), 1u);
    EXPECT_EQ(bit(0x8, 2), 0u);
    EXPECT_EQ(parity(0b1011), 1u);
    EXPECT_EQ(parity(0b1001), 0u);
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

} // namespace
} // namespace nb
