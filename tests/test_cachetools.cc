/**
 * @file
 * Tests for the cache-characterization tools (§VI-C): cacheSeq, the two
 * policy-inference tools, age graphs, and the set-dueling scanner.
 */

#include <gtest/gtest.h>

#include "cachetools/cacheseq.hh"
#include "cachetools/dueling_scan.hh"
#include "cachetools/infer.hh"
#include "cachetools/tlbtool.hh"
#include "core/engine.hh"

namespace nb::cachetools
{
namespace
{

Session
makeSession(const std::string &uarch = "Skylake",
            core::Mode mode = core::Mode::Kernel)
{
    Engine engine;
    SessionOptions opt;
    opt.uarch = uarch;
    opt.mode = mode;
    return engine.session(opt);
}

TEST(AccessSeq, ParseAndPrint)
{
    auto seq = parseAccessSeq("<wbinvd> B0 B1 B0? A");
    ASSERT_EQ(seq.size(), 5u);
    EXPECT_TRUE(seq[0].wbinvd);
    EXPECT_EQ(seq[1].block, 0);
    EXPECT_TRUE(seq[1].measured);
    EXPECT_EQ(seq[3].block, 0);
    EXPECT_FALSE(seq[3].measured);
    EXPECT_EQ(seq[4].block, 2); // "A" is the third distinct name
    EXPECT_EQ(accessSeqToString(seq), "<wbinvd> B0 B1 B0? B2");
}

TEST(PolicySim, TraceMatchesExpectation)
{
    Rng rng(1);
    PolicySim sim(cache::makePolicy("LRU", 2, &rng));
    auto trace = sim.trace(parseAccessSeq("<wbinvd> B0 B1 B0 B2 B1"));
    // B0 miss, B1 miss, B0 hit, B2 miss (evicts B1), B1 miss.
    std::vector<bool> expected = {false, false, true, false, false};
    EXPECT_EQ(trace, expected);
}

// ---------------------------------------------------------- cacheSeq --

TEST(CacheSeq, RequiresKernelMode)
{
    auto session = makeSession("Skylake", core::Mode::User);
    CacheSeqOptions co;
    EXPECT_THROW(CacheSeq(session, co), FatalError);
}

TEST(CacheSeq, RefusesAmdWithoutPrefetchControl)
{
    // §VI-D: "We did not consider recent AMD CPUs ... as we could not
    // find a way to disable their cache prefetchers."
    auto session = makeSession("Zen");
    CacheSeqOptions co;
    EXPECT_THROW(CacheSeq(session, co), FatalError);
}

TEST(CacheSeq, L1HitsMatchPolicySimulation)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L1;
    co.set = 3;
    CacheSeq cs(session, co);

    Rng rng(1);
    Rng seq_rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<SeqAccess> seq;
        seq.push_back({-1, false, true});
        for (int k = 0; k < 30; ++k)
            seq.push_back({static_cast<int>(seq_rng.nextBelow(11)), true,
                           false});
        PolicySim reference(cache::makePolicy("PLRU", 8, &rng));
        EXPECT_DOUBLE_EQ(cs.run(seq),
                         static_cast<double>(
                             reference.runSequence(seq)))
            << accessSeqToString(seq);
    }
}

TEST(CacheSeq, L2HitsMatchPolicySimulation)
{
    auto session = makeSession(); // Skylake L2: QLRU_H00_M1_R2_U1, 4-way
    CacheSeqOptions co;
    co.level = CacheLevel::L2;
    co.set = 99;
    CacheSeq cs(session, co);
    Rng rng(1);
    Rng seq_rng(7);
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<SeqAccess> seq;
        seq.push_back({-1, false, true});
        for (int k = 0; k < 16; ++k)
            seq.push_back({static_cast<int>(seq_rng.nextBelow(6)), true,
                           false});
        PolicySim reference(
            cache::makePolicy("QLRU_H00_M1_R2_U1", 4, &rng));
        EXPECT_DOUBLE_EQ(cs.run(seq),
                         static_cast<double>(reference.runSequence(seq)))
            << accessSeqToString(seq);
    }
}

TEST(CacheSeq, L3TargetsChosenCbox)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 42;
    co.cbox = 1;
    CacheSeq cs(session, co);
    auto &machine = session.machine();
    auto lookups_before = machine.caches().cboxStats(1).lookups;
    cs.run("<wbinvd> B0 B1 B2 B0");
    EXPECT_GT(machine.caches().cboxStats(1).lookups, lookups_before);
    // All blocks map to the requested set and slice.
    for (int b = 0; b < 3; ++b) {
        Addr paddr = machine.memory().translate(cs.blockVaddr(b));
        EXPECT_EQ(machine.caches().sliceOf(paddr), 1u);
        EXPECT_EQ(machine.caches().l3Slice(1).setIndex(paddr), 42u);
    }
}

TEST(CacheSeq, HitMissPartition)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 17;
    CacheSeq cs(session, co);
    // All measured accesses reach the L3 and partition into hits and
    // misses.
    auto hm = cs.runHitMiss(parseAccessSeq(
        "<wbinvd> B0 B1 B2 B3 B0 B1 B2 B3"));
    EXPECT_DOUBLE_EQ(hm.hits + hm.misses, 8.0);
    EXPECT_DOUBLE_EQ(hm.misses, 4.0);
}

TEST(CacheSeq, UnmeasuredAccessesExcluded)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 17;
    CacheSeq cs(session, co);
    auto hm = cs.runHitMiss(parseAccessSeq("<wbinvd> B0? B1? B0"));
    EXPECT_DOUBLE_EQ(hm.hits + hm.misses, 1.0);
    EXPECT_DOUBLE_EQ(hm.hits, 1.0);
}

TEST(CacheSeq, Retargeting)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 10;
    co.cbox = 0;
    CacheSeq cs(session, co);
    cs.run("<wbinvd> B0 B1");
    cs.setTarget(20, 1);
    cs.run("<wbinvd> B0 B1");
    Addr paddr = session.machine().memory().translate(cs.blockVaddr(0));
    EXPECT_EQ(session.machine().caches().sliceOf(paddr), 1u);
    EXPECT_EQ(session.machine().caches().l3Slice(1).setIndex(paddr), 20u);
}

// ----------------------------------------------------- assoc inference

TEST(Infer, AssociativityOnSimulatedPolicies)
{
    Rng rng(1);
    for (unsigned assoc : {4u, 8u, 16u}) {
        SimSetProbe probe("LRU", assoc, &rng);
        EXPECT_EQ(inferAssociativity(probe), assoc);
    }
    SimSetProbe plru("PLRU", 8, &rng);
    EXPECT_EQ(inferAssociativity(plru), 8u);
}

TEST(Infer, AssociativityOnHardware)
{
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L1;
    co.set = 12;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 8);
    EXPECT_EQ(inferAssociativity(probe), 8u);
}

// ----------------------------------------- permutation-policy inference

TEST(Infer, PermutationIdentifiesReferencePolicies)
{
    Rng rng(1);
    for (const char *name : {"LRU", "FIFO", "PLRU"}) {
        SimSetProbe probe(name, 4, &rng);
        auto id = identifyPermutationPolicy(probe, &rng);
        ASSERT_TRUE(id.has_value()) << name;
        EXPECT_EQ(*id, name);
    }
}

TEST(Infer, PermutationRejectsNonPermutationPolicy)
{
    Rng rng(1);
    SimSetProbe probe("QLRU_H11_M1_R0_U0", 4, &rng);
    EXPECT_FALSE(identifyPermutationPolicy(probe, &rng).has_value());
}

TEST(Infer, PermutationIdentifiesL1PlruOnHardware)
{
    // Table I: every CPU's L1 uses PLRU; found via the first tool
    // (§VI-C1).
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L1;
    co.set = 7;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 8);
    Rng rng(3);
    auto id = identifyPermutationPolicy(probe, &rng);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, "PLRU");
}

// -------------------------------------- random-sequence identification

TEST(Infer, RandomSequencesIdentifySimPolicies)
{
    Rng rng(5);
    for (const char *name :
         {"LRU", "FIFO", "MRU", "QLRU_H00_M1_R2_U1"}) {
        SimSetProbe probe(name, 4, &rng);
        Rng id_rng(6);
        auto id = identifyPolicy(probe, id_rng, 120);
        EXPECT_TRUE(id.deterministic) << name;
        ASSERT_FALSE(id.matches.empty()) << name;
        EXPECT_NE(std::find(id.matches.begin(), id.matches.end(),
                            std::string(name)),
                  id.matches.end())
            << name;
    }
}

TEST(Infer, SkylakeL2PolicyUniquelyIdentified)
{
    // Table I row: Skylake L2 = QLRU_H00_M1_R2_U1.
    auto session = makeSession();
    CacheSeqOptions co;
    co.level = CacheLevel::L2;
    co.set = 33;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 4);
    Rng rng(11);
    auto id = identifyPolicy(probe, rng, 100);
    EXPECT_TRUE(id.deterministic);
    ASSERT_EQ(id.matches.size(), 1u);
    EXPECT_EQ(id.matches[0], "QLRU_H00_M1_R2_U1");
}

TEST(Infer, NehalemL3IsMru)
{
    auto session = makeSession("Nehalem");
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 21;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 16);
    Rng rng(13);
    auto id = identifyPolicy(probe, rng, 60);
    ASSERT_EQ(id.matches.size(), 1u);
    EXPECT_EQ(id.matches[0], "MRU");
}

TEST(Infer, ProbabilisticPolicyDetectedAsNondeterministic)
{
    // §VI-D: the IvB leader sets 768-831 use probabilistic insertion;
    // the random-sequence tool cannot identify them (age graphs can).
    auto session = makeSession("IvyBridge");
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 800;
    co.cbox = 0;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 12);
    Rng rng(17);
    auto id = identifyPolicy(probe, rng, 40);
    EXPECT_FALSE(id.deterministic);
    EXPECT_TRUE(id.matches.empty());
}

TEST(Infer, CandidateListContainsTableOnePolicies)
{
    auto names = candidatePolicyNames(16);
    for (const char *required :
         {"LRU", "FIFO", "MRU", "MRU_SBV", "PLRU", "QLRU_H11_M1_R0_U0",
          "QLRU_H00_M1_R2_U1", "QLRU_H00_M1_R0_U1"}) {
        EXPECT_NE(std::find(names.begin(), names.end(),
                            std::string(required)),
                  names.end())
            << required;
    }
}

// -------------------------------------------------------- age graphs --

TEST(AgeGraph, LruStaircaseOnSim)
{
    Rng rng(1);
    SimSetProbe probe("LRU", 4, &rng);
    auto graph = computeAgeGraph(probe, 4, 4, 1);
    // Under LRU, block Bi (i-th of 4 fills) survives exactly
    // (4 - 1 - i) ... check the eviction boundary: B0 dies after 1
    // fresh block... B0 is the oldest: dies first.
    // hitRate[b][n] for n fresh blocks: survives iff n + (4 - b) <= 4.
    for (unsigned b = 0; b < 4; ++b) {
        for (std::size_t p = 0; p < graph.freshCounts.size(); ++p) {
            unsigned n = graph.freshCounts[p];
            double expected = n <= b ? 1.0 : 0.0;
            EXPECT_DOUBLE_EQ(graph.hitRate[b][p], expected)
                << "B" << b << " n=" << n;
        }
    }
}

TEST(AgeGraph, CsvShape)
{
    Rng rng(1);
    SimSetProbe probe("LRU", 4, &rng);
    auto graph = computeAgeGraph(probe, 2, 4, 2);
    auto csv = graph.toCsv();
    EXPECT_NE(csv.find("fresh,B0,B1"), std::string::npos);
    EXPECT_NE(csv.find("\n0,"), std::string::npos);
    EXPECT_NE(csv.find("\n4,"), std::string::npos);
}

TEST(AgeGraph, IvyBridgeProbabilisticSets)
{
    // The Figure 1 shape on the real (simulated) machine: in sets
    // 768-831, B0 is mostly gone after ~16 fresh blocks but a ~1/16
    // fraction survives much longer (§VI-D).
    auto session = makeSession("IvyBridge");
    CacheSeqOptions co;
    co.level = CacheLevel::L3;
    co.set = 800;
    co.cbox = 0;
    co.repetitions = 16;
    CacheSeq cs(session, co);
    HardwareSetProbe probe(cs, 12);
    auto graph = computeAgeGraph(probe, 2, 48, 16);
    // n=0: everything hits.
    EXPECT_NEAR(graph.hitRate[0][0], 1.0, 0.01);
    // B0 after 16 fresh blocks: mostly evicted.
    EXPECT_LT(graph.hitRate[0][1], 0.45);
    // ...but clearly more often alive than under a deterministic
    // policy with age-3 insertion would allow at n=48.
    double late_survival = graph.hitRate[0][2] + graph.hitRate[0][3];
    EXPECT_GT(late_survival, 0.0);
}

// -------------------------------------------------------------- TLB --

TEST(TlbTool, RecoversCapacitiesAndPenalties)
{
    auto session = makeSession();
    // Search bounded at 2048 pages for test speed: the DTLB boundary
    // (64) is inside the range, the STLB boundary (1536) is too.
    auto tlb = measureTlb(session, 2048);
    EXPECT_NEAR(tlb.dtlbEntries, 64, 2);
    EXPECT_NEAR(tlb.stlbEntries, 1536, 8);
    EXPECT_NEAR(tlb.stlbPenalty,
                session.machine().tlb().config().stlbLatency, 1.0);
    EXPECT_NEAR(tlb.walkPenalty,
                session.machine().tlb().config().walkLatency, 2.0);
}

TEST(TlbTool, RequiresKernelMode)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::User;
    auto session = engine.session(opt);
    EXPECT_THROW(measureTlb(session, 128), FatalError);
}

// ------------------------------------------------------ set dueling --

TEST(DuelingScan, FindsIvyBridgeLeaders)
{
    // §VI-D: sets 512-575 and 768-831 are dedicated in ALL slices.
    auto session = makeSession("IvyBridge");
    const auto &duel = session.machine().uarch().cacheConfig.l3Dueling;
    DuelingScanner scanner(session, duel.policyA, duel.policyB);
    DuelingScanOptions so;
    so.setLo = 480;
    so.setHi = 863;
    so.stride = 32;
    so.reps = 2;
    auto result = scanner.scan(so);

    unsigned slices = session.machine().caches().numSlices();
    std::vector<bool> found_a(slices, false), found_b(slices, false);
    for (const auto &range : result.dedicatedRanges) {
        if (range.role == SetRole::FixedA && range.setLo >= 512 &&
            range.setHi <= 575)
            found_a[range.slice] = true;
        if (range.role == SetRole::FixedB && range.setLo >= 768 &&
            range.setHi <= 831)
            found_b[range.slice] = true;
        // No dedicated ranges outside the true leader bands.
        EXPECT_TRUE((range.setLo >= 512 - 32 && range.setHi <= 575 + 32) ||
                    (range.setLo >= 768 - 32 && range.setHi <= 831 + 32))
            << range.setLo << "-" << range.setHi;
    }
    for (unsigned s = 0; s < slices; ++s) {
        EXPECT_TRUE(found_a[s]) << "slice " << s;
        EXPECT_TRUE(found_b[s]) << "slice " << s;
    }
}

} // namespace
} // namespace nb::cachetools
