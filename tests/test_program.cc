/**
 * @file
 * Tests for the predecoded program IR (sim/program.hh) and the
 * measurement-loop codegen hoisting built on it: decode structure
 * (repeat folding, cached timing, operand classification), execution
 * parity between the repeat-encoded and materialized paths, and the
 * Runner's program cache / session-layer assembly memo behaviour.
 */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "sim/machine.hh"
#include "sim/program.hh"
#include "uarch/timing.hh"
#include "uarch/uarch.hh"
#include "x86/assembler.hh"

namespace nb
{
namespace
{

using core::GenParams;
using core::ReadoutItem;
using sim::Machine;
using sim::Program;
using x86::assemble;
using x86::Instruction;
using x86::Opcode;
using x86::Reg;

// ----------------------------------------------------------- helpers --

/** A kernel-mode machine with a few identity-mapped pages. */
std::unique_ptr<Machine>
makeMachine(const std::string &uarch = "Skylake")
{
    auto m = std::make_unique<Machine>(uarch::getMicroArch(uarch), 42);
    m->setPrivilege(sim::Privilege::Kernel);
    m->setInterruptsEnabled(false);
    for (Addr page = 0; page < 64; ++page) {
        m->memory().pageTable().mapPage(0x10000 + page * kPageSize,
                                        0x10000 + page * kPageSize);
    }
    return m;
}

GenParams
baseParams()
{
    GenParams p;
    p.body = assemble("nop");
    p.resultBase = 0x1000;
    p.readouts = {{ReadoutItem::Kind::FixedPmc, 1, "Core cycles"}};
    return p;
}

/** Materialize `repeat` relocated copies of a body (the legacy
 *  unrolled encoding), with an optional prologue in front. */
std::vector<Instruction>
unrolled(const std::vector<Instruction> &prologue,
         const std::vector<Instruction> &body, std::uint64_t repeat)
{
    std::vector<Instruction> out = prologue;
    for (std::uint64_t u = 0; u < repeat; ++u) {
        std::size_t copy_start = out.size();
        for (Instruction insn : body) {
            if (insn.targetIdx >= 0)
                insn.targetIdx += static_cast<std::int32_t>(copy_start);
            out.push_back(std::move(insn));
        }
    }
    return out;
}

/** The same sequence as a repeat-encoded two-segment program. */
Program
repeatProgram(const std::string &uarch,
              const std::vector<Instruction> &prologue,
              const std::vector<Instruction> &body, std::uint64_t repeat)
{
    std::vector<Program::Segment> segments;
    if (!prologue.empty())
        segments.push_back({prologue, 1, false});
    segments.push_back({body, repeat, false});
    return Program::decode(uarch::getMicroArch(uarch),
                           std::move(segments));
}

/** GPR snapshot for state comparisons. */
std::vector<std::uint64_t>
gprs(Machine &m)
{
    std::vector<std::uint64_t> v;
    for (unsigned i = 0; i < x86::kNumGprs; ++i)
        v.push_back(m.arch().readGpr(static_cast<Reg>(i), 64));
    return v;
}

// --------------------------------------------------- decode structure --

TEST(ProgramDecode, RepeatFoldingKeepsStaticSizeConstant)
{
    auto p = baseParams();
    p.localUnrollCount = 500;
    const auto &ua = uarch::getMicroArch("Skylake");

    auto legacy = generateMeasurementCode(p);
    Program prog = core::buildMeasurementProgram(p, ua);

    // Dynamic layout identical, static decode independent of unroll.
    EXPECT_EQ(prog.virtualSize(), legacy.size());
    EXPECT_LT(prog.entryCount(), legacy.size());

    auto p1 = p;
    p1.localUnrollCount = 1;
    Program prog1 = core::buildMeasurementProgram(p1, ua);
    EXPECT_EQ(prog.entryCount(), prog1.entryCount());

    // The body block carries the repeat count.
    bool found_repeat = false;
    for (const auto &block : prog.blocks())
        found_repeat |= block.repeat == 500 && block.entryCount == 1;
    EXPECT_TRUE(found_repeat);
}

TEST(ProgramDecode, MaterializeMatchesLegacyCodegen)
{
    const auto &ua = uarch::getMicroArch("Skylake");
    std::vector<GenParams> cases;
    {
        auto p = baseParams();
        p.localUnrollCount = 7;
        cases.push_back(p);
    }
    {
        auto p = baseParams();
        p.body = assemble("l: dec RAX; jnz l");
        p.localUnrollCount = 3;
        p.loopCount = 10;
        cases.push_back(p);
    }
    {
        auto p = baseParams();
        p.noMem = true;
        p.resultBase = 0;
        p.serialize = core::SerializeMode::Cpuid;
        p.localUnrollCount = 4;
        cases.push_back(p);
    }
    {
        auto p = baseParams();
        p.localUnrollCount = 0; // basic mode: readouts only
        cases.push_back(p);
    }
    {
        auto p = baseParams();
        p.init = assemble("mov RAX, 1; mov RBX, 2");
        p.loopCount = 5;
        p.localUnrollCount = 2;
        cases.push_back(p);
    }
    for (std::size_t i = 0; i < cases.size(); ++i) {
        auto legacy = generateMeasurementCode(cases[i]);
        auto expanded =
            core::buildMeasurementProgram(cases[i], ua).materialize();
        EXPECT_EQ(expanded, legacy) << "case " << i;
    }
}

TEST(ProgramDecode, CachedTimingMatchesCoreTiming)
{
    auto code = assemble(
        "add RAX, RBX; imul RAX, RBX; shl RAX, 3; lea RAX, [RBX+RCX+8];"
        "mov RAX, [0x10000]; mov [0x10000], RAX; div RBX; cpuid;"
        "rdpmc; movaps XMM1, XMM2; jnz l; l: nop; push RAX; pop RBX");
    for (const char *name : {"Skylake", "Nehalem", "Haswell", "Zen"}) {
        const auto &ua = uarch::getMicroArch(name);
        Program prog = Program::decode(ua, code);
        ASSERT_EQ(prog.entryCount(), code.size());
        for (std::size_t i = 0; i < code.size(); ++i) {
            const sim::DecodedInsn &d = prog.entry(i);
            auto timing = uarch::coreTiming(ua.family, code[i]);
            EXPECT_EQ(d.latency, timing.latency) << name << " #" << i;
            EXPECT_EQ(d.blockCycles, timing.blockCycles)
                << name << " #" << i;
            ASSERT_EQ(d.uopCount, timing.uopPorts.size())
                << name << " #" << i;
            for (unsigned u = 0; u < d.uopCount; ++u) {
                EXPECT_EQ(prog.uopPorts(d)[u], timing.uopPorts[u])
                    << name << " #" << i << " uop " << u;
            }
        }
    }
}

TEST(ProgramDecode, ZeroIdiomAndDestReadParity)
{
    // The cached flags must match the x86-layer classification the
    // executor used to recompute per dynamic instruction.
    auto code = assemble("xor RAX, RAX; sub RBX, RBX; pxor XMM1, XMM1;"
                         "xor RAX, RBX; sub RAX, RBX; mov RAX, RBX;"
                         "add RAX, RBX; popcnt RAX, RBX");
    Program prog = Program::decode(uarch::getMicroArch("Skylake"), code);

    EXPECT_TRUE(prog.entry(0).zeroIdiom);  // xor RAX, RAX
    EXPECT_TRUE(prog.entry(1).zeroIdiom);  // sub RBX, RBX
    EXPECT_TRUE(prog.entry(2).zeroIdiom);  // pxor XMM1, XMM1
    EXPECT_FALSE(prog.entry(3).zeroIdiom); // xor RAX, RBX
    EXPECT_FALSE(prog.entry(4).zeroIdiom); // sub RAX, RBX
    for (std::size_t i = 0; i < code.size(); ++i)
        EXPECT_EQ(prog.entry(i).zeroIdiom, code[i].isZeroIdiom()) << i;

    // Zero idioms wait on no source registers at all.
    EXPECT_EQ(prog.entry(0).srcCount, 0u);

    // mov RAX, RBX: MOV does not read its destination -> only RBX
    // gates readiness. add RAX, RBX reads both.
    EXPECT_FALSE(code[5].destIsRead());
    ASSERT_EQ(prog.entry(5).srcCount, 1u);
    EXPECT_EQ(prog.srcRegs(prog.entry(5))[0], Reg::RBX);
    EXPECT_TRUE(code[6].destIsRead());
    EXPECT_EQ(prog.entry(6).srcCount, 2u);
    // popcnt writes its destination without reading it.
    EXPECT_FALSE(code[7].destIsRead());
    ASSERT_EQ(prog.entry(7).srcCount, 1u);
    EXPECT_EQ(prog.srcRegs(prog.entry(7))[0], Reg::RBX);
}

TEST(ProgramDecode, LoadStoreDecomposition)
{
    auto code = assemble("mov RAX, [0x10000]; mov [0x10000], RAX;"
                         "add [0x10000], RAX; push RAX; pop RBX;"
                         "prefetcht0 [0x10000]");
    Program prog = Program::decode(uarch::getMicroArch("Skylake"), code);

    EXPECT_TRUE(prog.entry(0).hasLoad);    // pure load
    EXPECT_TRUE(prog.entry(0).doLoadUop);
    EXPECT_FALSE(prog.entry(0).hasStore);
    EXPECT_TRUE(prog.entry(1).hasStore);   // pure store
    EXPECT_TRUE(prog.entry(1).doStoreUop);
    EXPECT_FALSE(prog.entry(1).hasLoad);
    EXPECT_TRUE(prog.entry(2).hasLoad);    // RMW: both
    EXPECT_TRUE(prog.entry(2).hasStore);
    EXPECT_TRUE(prog.entry(3).hasStore);   // push: implicit store...
    EXPECT_FALSE(prog.entry(3).doStoreUop); // ...handled inline
    EXPECT_TRUE(prog.entry(4).hasLoad);    // pop: implicit load...
    EXPECT_FALSE(prog.entry(4).doLoadUop); // ...handled inline
    EXPECT_TRUE(prog.entry(5).hasLoad);    // prefetch counts as load...
    EXPECT_FALSE(prog.entry(5).doLoadUop); // ...dispatched inline
}

TEST(ProgramDecode, UnsupportedOpcodeFaultsAtDecode)
{
    auto code = assemble("vaddps YMM1, YMM2, YMM3");
    EXPECT_THROW(
        Program::decode(uarch::getMicroArch("Nehalem"), code),
        FatalError);
}

TEST(ProgramDecode, EmptyProgramExecutesAsNoOp)
{
    auto m = makeMachine();
    Program empty;
    auto stats = m->execute(empty);
    EXPECT_EQ(stats.instructions, 0u);
    EXPECT_EQ(stats.cycles(), 0u);
}

// ------------------------------------------------- execution parity --

/**
 * Execute the materialized unrolled sequence on one machine and the
 * repeat-encoded program on another (same uarch + seed) and demand
 * bit-identical statistics, cycle counts, and register state.
 */
void
expectBitIdentical(const std::string &uarch,
                   const std::string &prologue_asm,
                   const std::string &body_asm, std::uint64_t repeat)
{
    std::vector<Instruction> prologue;
    if (!prologue_asm.empty())
        prologue = assemble(prologue_asm);
    auto body = assemble(body_asm);

    auto ma = makeMachine(uarch);
    auto mb = makeMachine(uarch);
    auto sa = ma->execute(Program::decode(
        ma->uarch(), unrolled(prologue, body, repeat)));
    auto sb = mb->execute(repeatProgram(uarch, prologue, body, repeat));

    EXPECT_EQ(sa.instructions, sb.instructions) << body_asm;
    EXPECT_EQ(sa.uops, sb.uops) << body_asm;
    EXPECT_EQ(sa.startCycle, sb.startCycle) << body_asm;
    EXPECT_EQ(sa.endCycle, sb.endCycle) << body_asm;
    EXPECT_EQ(ma->cycles(), mb->cycles()) << body_asm;
    EXPECT_EQ(gprs(*ma), gprs(*mb)) << body_asm;
}

TEST(ProgramExecution, BitIdenticalLoadsAndStores)
{
    expectBitIdentical("Skylake", "mov R14, 0x10000; xor RAX, RAX",
                       "mov [R14], RAX; mov RBX, [R14]; add R14, 64",
                       50);
}

TEST(ProgramExecution, BitIdenticalFences)
{
    expectBitIdentical("Skylake", "",
                       "lfence; add RAX, 1; mfence; sfence", 20);
}

TEST(ProgramExecution, BitIdenticalBranches)
{
    // Pattern-relative branch targets: each copy's JNZ spins on its
    // own copy's DEC, exactly like the relocated unrolled encoding.
    expectBitIdentical("Skylake", "mov RAX, 40",
                       "l: dec RAX; jnz l; add RAX, 4", 10);
}

TEST(ProgramExecution, BitIdenticalCallRet)
{
    expectBitIdentical("Skylake",
                       "mov RSP, 0x20000",
                       "call f; jmp done; f: add RAX, 1; ret; done: nop",
                       5);
}

TEST(ProgramExecution, BitIdenticalPfcMarkers)
{
    expectBitIdentical("Skylake", "",
                       "pfc_pause; add RAX, 1; pfc_resume; add RBX, 1",
                       10);
}

TEST(ProgramExecution, BitIdenticalCpuid)
{
    // CPUID draws from the machine RNG per dynamic execution; the
    // predecoded path must consume the stream in the same order.
    expectBitIdentical("Skylake", "", "cpuid; add RAX, RBX", 5);
}

TEST(ProgramExecution, BitIdenticalAcrossFamilies)
{
    for (const char *uarch : {"Nehalem", "SandyBridge", "Haswell",
                              "Zen"}) {
        expectBitIdentical(uarch, "mov R14, 0x10000",
                           "mov RBX, [R14]; imul RBX, RBX; dec RAX",
                           25);
    }
}

TEST(ProgramExecution, RdpmcCounterValuesIdentical)
{
    // Full counter readout through RDPMC on both paths.
    const std::string readout =
        "mov RCX, 0x40000001; rdpmc; mov RSI, RAX";
    auto body = assemble("add RAX, RAX; imul RBX, RBX");
    auto ma = makeMachine();
    auto mb = makeMachine();
    auto pre = assemble("xor RAX, RAX; mov RBX, 3");
    auto post = assemble(readout);

    auto code = unrolled(pre, body, 30);
    code.insert(code.end(), post.begin(), post.end());
    ma->execute(Program::decode(ma->uarch(), code));

    std::vector<Program::Segment> segments;
    segments.push_back({pre, 1, false});
    segments.push_back({body, 30, false});
    segments.push_back({post, 1, false});
    mb->execute(Program::decode(uarch::getMicroArch("Skylake"),
                                std::move(segments)));

    EXPECT_EQ(ma->arch().readGpr(Reg::RSI, 64),
              mb->arch().readGpr(Reg::RSI, 64));
}

// -------------------------------------------------- program caching --

TEST(ProgramCache, OneBuildPerRoundAndUnrollVersion)
{
    Engine engine;
    SessionOptions opt;
    opt.mode = core::Mode::Kernel;
    Session session = engine.session(opt);

    core::BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 10;
    spec.warmUpCount = 3;
    // Five events on Skylake's four programmable counters: two rounds
    // (§III-J).
    spec.config = core::CounterConfig::parseString(
        "0E.01 A\nA1.01 B\nA1.02 C\nA1.04 D\nA1.08 E\n");

    auto &runner = session.runner();
    runner.resetProgramStats();

    ASSERT_TRUE(session.run(spec).ok());
    auto stats1 = runner.programStats();
    // One build per (round, unroll-version) -- NOT one per
    // measurement: 2 rounds x 2 unroll versions, regardless of the 13
    // executions each program serves.
    EXPECT_EQ(stats1.misses, 4u);
    EXPECT_EQ(stats1.hits, 0u);

    ASSERT_TRUE(session.run(spec).ok());
    auto stats2 = runner.programStats();
    EXPECT_EQ(stats2.misses, 4u); // repeated spec: no regeneration
    EXPECT_EQ(stats2.hits, 4u);

    // More measurements of the same spec never add builds per
    // measurement; a changed parameter set is a different program.
    core::BenchmarkSpec more = spec;
    more.nMeasurements = 50;
    ASSERT_TRUE(session.run(more).ok());
    EXPECT_EQ(runner.programStats().misses, 8u);
}

TEST(ProgramCache, StatsResetKeepsCachedPrograms)
{
    Engine engine;
    Session session = engine.session();
    core::BenchmarkSpec spec;
    spec.asmCode = "add RAX, RAX";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;
    ASSERT_TRUE(session.run(spec).ok());
    session.runner().resetProgramStats();
    EXPECT_EQ(session.runner().programStats().misses, 0u);
    ASSERT_TRUE(session.run(spec).ok());
    // Programs survived the stats reset: pure hits, no builds.
    EXPECT_EQ(session.runner().programStats().misses, 0u);
    EXPECT_GT(session.runner().programStats().hits, 0u);
}

TEST(AssembleCache, RepeatedSpecTextParsedOnce)
{
    Engine engine;
    Session session = engine.session();
    core::BenchmarkSpec spec;
    // A text unlikely to be used by other tests (the memo is
    // process-wide), so the delta accounting below is exact.
    spec.asmCode = "add RAX, 4242; sub RAX, 4242; add RAX, 17";
    spec.nMeasurements = 2;
    spec.warmUpCount = 0;

    auto before = assembleCacheCounters();
    ASSERT_TRUE(session.run(spec).ok());
    ASSERT_TRUE(session.run(spec).ok());
    ASSERT_TRUE(session.run(spec).ok());
    auto after = assembleCacheCounters();
    EXPECT_EQ(after.misses - before.misses, 1u);
    EXPECT_GE(after.hits - before.hits, 2u);
}

} // namespace
} // namespace nb
