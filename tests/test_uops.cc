/**
 * @file
 * Tests for case study I (§V): the measured latency/throughput/port
 * characteristics must recover the microarchitectural ground truth.
 */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "uarch/timing.hh"
#include "uops/characterize.hh"
#include "x86/assembler.hh"

namespace nb::uops
{
namespace
{

Session &
skylakeSession()
{
    // One pooled Skylake machine shared by all variants, exactly like
    // a characterization campaign would use the Engine.
    static Engine engine;
    static Session session = engine.session({});
    return session;
}

VariantResult
characterize(const std::string &asm_text)
{
    Characterizer tool(skylakeSession());
    return tool.characterize(x86::assemble(asm_text)[0]);
}

TEST(Uops, AddRegReg)
{
    auto r = characterize("add RAX, RBX");
    ASSERT_TRUE(r.latency.has_value());
    EXPECT_NEAR(*r.latency, 1.0, 0.1);
    EXPECT_NEAR(r.throughput, 0.25, 0.08); // 4 ALU ports
    EXPECT_NEAR(r.uops, 1.0, 0.1);
}

TEST(Uops, ImulLatencyThree)
{
    auto r = characterize("imul RAX, RBX");
    ASSERT_TRUE(r.latency.has_value());
    EXPECT_NEAR(*r.latency, 3.0, 0.15);
    // Only one multiplier port -> throughput 1/cycle.
    EXPECT_NEAR(r.throughput, 1.0, 0.15);
    ASSERT_TRUE(r.portUsage.count(1));
    EXPECT_NEAR(r.portUsage.at(1), 1.0, 0.1);
}

TEST(Uops, LoadLatencyAndPorts)
{
    auto r = characterize("mov RAX, [R14]");
    ASSERT_TRUE(r.latency.has_value());
    EXPECT_NEAR(*r.latency, 4.0, 0.2); // L1 latency (§III-A)
    EXPECT_NEAR(r.throughput, 0.5, 0.1); // two load ports
    double p2 = r.portUsage.count(2) ? r.portUsage.at(2) : 0.0;
    double p3 = r.portUsage.count(3) ? r.portUsage.at(3) : 0.0;
    EXPECT_NEAR(p2 + p3, 1.0, 0.15);
}

TEST(Uops, StoreThroughputOnePerCycle)
{
    auto r = characterize("mov [R14], RAX");
    EXPECT_FALSE(r.latency.has_value());
    EXPECT_NEAR(r.throughput, 1.0, 0.2); // single store-data port
    ASSERT_TRUE(r.portUsage.count(4));
}

TEST(Uops, NopThroughputIssueBound)
{
    auto r = characterize("nop");
    EXPECT_NEAR(r.throughput, 0.25, 0.08); // 4-wide issue, no ports
    EXPECT_TRUE(r.portUsage.empty());
}

TEST(Uops, DivIsSlowAndBlocking)
{
    auto r = characterize("div RBX");
    ASSERT_TRUE(r.latency.has_value());
    EXPECT_GT(*r.latency, 25.0);
    EXPECT_GT(r.throughput, 15.0); // non-pipelined divider
}

TEST(Uops, PrivilegedNeedKernelMode)
{
    Engine engine;
    SessionOptions opt;
    opt.uarch = "Skylake";
    opt.mode = core::Mode::User;
    Session user = engine.session(opt);
    Characterizer tool(user);
    auto r = tool.characterize(x86::assemble("rdmsr")[0]);
    EXPECT_TRUE(r.requiresKernelMode);

    // In kernel mode (the nanoBench contribution, §V) it works.
    auto k = characterize("wbinvd");
    EXPECT_FALSE(k.requiresKernelMode);
    EXPECT_GT(k.throughput, 1000.0);
}

TEST(Uops, AvxRequiresPostNehalem)
{
    Engine engine;
    SessionOptions opt;
    opt.uarch = "Nehalem";
    opt.mode = core::Mode::Kernel;
    Session nehalem = engine.session(opt);
    Characterizer tool(nehalem);
    auto catalog = tool.variantCatalog();
    for (const auto &insn : catalog) {
        EXPECT_NE(insn.opcode, x86::Opcode::VADDPS);
        EXPECT_NE(insn.opcode, x86::Opcode::VFMADD231PS);
    }
}

TEST(Uops, CatalogIsSubstantial)
{
    Characterizer tool(skylakeSession());
    EXPECT_GE(tool.variantCatalog().size(), 90u);
}

TEST(Uops, TableFormatting)
{
    auto r = characterize("add RAX, RBX");
    auto row = r.tableRow();
    EXPECT_NE(row.find("add RAX, RBX"), std::string::npos);
    EXPECT_FALSE(Characterizer::tableHeader().empty());
}

/**
 * Property sweep: for register-only single-µop forms, the measured
 * latency must equal the ground-truth table latency exactly -- this is
 * the closed-loop validation of the whole measurement stack.
 */
class LatencyRecovery : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LatencyRecovery, MeasuredMatchesGroundTruth)
{
    auto insn = x86::assemble(GetParam())[0];
    auto truth = uarch::coreTiming(uarch::PortFamily::Skylake, insn);
    auto r = characterize(GetParam());
    ASSERT_TRUE(r.latency.has_value()) << GetParam();
    EXPECT_NEAR(*r.latency, truth.latency, 0.2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    RegisterForms, LatencyRecovery,
    ::testing::Values("add RAX, RBX", "adc RAX, RBX", "sub RAX, RBX",
                      "and RAX, RBX", "xor RAX, RBX", "inc RAX",
                      "neg RAX", "imul RAX, RBX", "shl RAX, 3",
                      "rol RAX, 3", "popcnt RAX, RBX", "lzcnt RAX, RBX",
                      "bsf RAX, RBX", "bswap RAX", "cmovz RAX, RBX",
                      "movaps XMM1, XMM2", "pxor XMM1, XMM2",
                      "paddd XMM1, XMM2", "addps XMM1, XMM2",
                      "mulps XMM1, XMM2"));

/** Throughput is never better than the port bound allows. */
class ThroughputSanity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ThroughputSanity, AboveIssueBound)
{
    auto r = characterize(GetParam());
    EXPECT_GE(r.throughput, 0.2) << GetParam(); // 4-wide issue floor
    EXPECT_LT(r.throughput, 100.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    CommonForms, ThroughputSanity,
    ::testing::Values("add RAX, RBX", "mov RAX, [R14]", "mov [R14], RAX",
                      "imul RAX, RBX", "vaddps YMM1, YMM2, YMM3",
                      "lea RAX, [RBX+8]", "setz AL", "push RAX"));

TEST(Uops, FullCatalogRunsOnSkylake)
{
    Characterizer tool(skylakeSession());
    auto results = tool.characterizeAll();
    EXPECT_GE(results.size(), 90u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.requiresKernelMode) << r.asmText;
        EXPECT_GT(r.throughput, 0.0) << r.asmText;
    }
}

} // namespace
} // namespace nb::uops
